//! Durability benchmark: recovery time as a function of WAL length, and the
//! write-throughput overhead of WAL + checkpointing.
//!
//! Two sweeps:
//!
//! * **recovery vs WAL depth** — apply `N` maintenance transactions with
//!   checkpoints disabled, snapshot the durable bytes at several depths, and
//!   time `open_or_recover_from_state` at each. Replay work should scale
//!   with the WAL suffix, so recovery time grows roughly linearly and a
//!   checkpoint resets it to near the clean-open floor.
//! * **checkpoint overhead** — the same write workload at several
//!   `checkpoint_every` cadences (plus the WAL-only and bare in-memory
//!   baselines), reporting transactions/second.
//!
//! Two more sweeps gate the group-commit work:
//!
//! * **epoch publish cost vs database size** — copy-on-write snapshots must
//!   make publishing a new epoch O(dirty), not O(database): the mean
//!   publish cost from 10^4 to 10^6 tuples must stay within 1.5x.
//! * **group commit vs per-commit fsync** — 8 submitter threads through a
//!   [`CommitQueue`] against a simulated fsync latency must beat the
//!   one-fsync-per-commit baseline by at least 3x.
//!
//! A fifth sweep gates self-healing: every live signature page is rotted,
//! the degraded engine must still answer the probe exactly, and a scrub +
//! WAL-routed repair must return blocks-per-probe to the clean baseline —
//! timed and emitted under `"self_healing"`.
//!
//! Also a correctness gate: every recovered database must answer the probe
//! skyline exactly like the live master it was recovered from, or the
//! binary exits non-zero.
//!
//! Usage: `recovery_bench [--txns N] [--tuples N] [--ops-per-txn K]
//! [--publish-max N] [--fsync-delay-us U] [--out PATH]` — results land in
//! `BENCH_recovery.json`.

use pcube_core::{
    skyline_query, CommitQueue, CommitQueuePolicy, DurabilityOptions, DurableDb, MaintenanceOp,
    PCubeConfig, PCubeDb, QueryBudget,
};
use pcube_cube::{Predicate, Relation};
use pcube_data::{synthetic, SyntheticSpec};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Config {
    txns: usize,
    tuples: usize,
    ops_per_txn: usize,
    publish_max: usize,
    fsync_delay_us: u64,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        txns: 400,
        tuples: 10_000,
        ops_per_txn: 4,
        publish_max: 1_000_000,
        // A rotational-class fsync: write barriers are why group commit
        // exists; NVMe-class latencies hide the effect behind apply cost.
        fsync_delay_us: 5_000,
        out: "BENCH_recovery.json".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |n: usize| {
            args.get(n).unwrap_or_else(|| {
                eprintln!("{} needs a value", args[n - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--txns" => {
                cfg.txns = need(i + 1).parse().expect("--txns N");
                i += 2;
            }
            "--tuples" => {
                cfg.tuples = need(i + 1).parse().expect("--tuples N");
                i += 2;
            }
            "--ops-per-txn" => {
                cfg.ops_per_txn = need(i + 1).parse().expect("--ops-per-txn K");
                i += 2;
            }
            "--publish-max" => {
                cfg.publish_max = need(i + 1).parse().expect("--publish-max N");
                i += 2;
            }
            "--fsync-delay-us" => {
                cfg.fsync_delay_us = need(i + 1).parse().expect("--fsync-delay-us U");
                i += 2;
            }
            "--out" => {
                cfg.out = need(i + 1).clone();
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn seed_relation(tuples: usize) -> Relation {
    let spec = SyntheticSpec {
        n_tuples: tuples,
        n_bool: 3,
        n_pref: 2,
        cardinality: 8,
        ..Default::default()
    };
    synthetic(&spec)
}

/// The deterministic write workload: transaction `t` as a pure function of
/// `t` and a live-set model, so every run (and every recovery oracle) sees
/// identical operations.
struct Workload {
    live: BTreeSet<u64>,
    next_tid: u64,
    ops_per_txn: usize,
}

impl Workload {
    fn new(seed_rows: usize, ops_per_txn: usize) -> Self {
        Workload {
            live: (0..seed_rows as u64).collect(),
            next_tid: seed_rows as u64,
            ops_per_txn,
        }
    }

    fn txn(&mut self, t: usize) -> Vec<MaintenanceOp> {
        let base = self.next_tid;
        let mut ops = Vec::with_capacity(self.ops_per_txn);
        for j in 0..self.ops_per_txn.saturating_sub(1).max(1) {
            let i = (t * self.ops_per_txn + j) as u64;
            ops.push(MaintenanceOp::Insert {
                codes: vec![(i % 8) as u32, (i % 8) as u32, (i % 8) as u32],
                coords: vec![
                    (i as f64 * 0.2711 + 0.03).fract(),
                    (i as f64 * 0.4131 + 0.17).fract(),
                ],
            });
            self.live.insert(self.next_tid);
            self.next_tid += 1;
        }
        if self.ops_per_txn > 1 && !t.is_multiple_of(2) {
            let candidates: Vec<u64> =
                self.live.iter().copied().filter(|&x| x < base).collect();
            let victim = candidates[(t * 13) % candidates.len()];
            ops.push(MaintenanceOp::Delete { tid: victim });
            self.live.remove(&victim);
        }
        ops
    }
}

fn probe_skyline(db: &PCubeDb) -> Vec<u64> {
    let mut tids: Vec<u64> =
        skyline_query(db, &Vec::new(), &[0, 1], false).skyline.iter().map(|p| p.0).collect();
    tids.sort_unstable();
    tids
}

fn main() {
    let cfg = parse_args();
    let mut mismatches = 0u64;

    // --- sweep 1: recovery time vs WAL length -----------------------------
    eprintln!(
        "recovery sweep: {} txns x {} ops over {} tuples",
        cfg.txns, cfg.ops_per_txn, cfg.tuples
    );
    let mut db = DurableDb::create(
        seed_relation(cfg.tuples),
        &PCubeConfig::default(),
        DurabilityOptions { fsync_every: 1, checkpoint_every: 0, ..DurabilityOptions::default() },
    );
    let mut workload = Workload::new(cfg.tuples, cfg.ops_per_txn);
    let depths = [0, cfg.txns / 8, cfg.txns / 4, cfg.txns / 2, cfg.txns];
    let mut recovery_rows = Vec::new();
    let mut applied = 0usize;
    for &depth in &depths {
        while applied < depth {
            db.apply(&workload.txn(applied)).expect("apply");
            applied += 1;
        }
        let state = db.durable_state();
        let start = Instant::now();
        let (recovered, report) =
            DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
                .expect("recovery");
        let micros = start.elapsed().as_micros();
        if probe_skyline(recovered.db()) != probe_skyline(db.db()) {
            eprintln!("FAIL: recovered answers diverge at depth {depth}");
            mismatches += 1;
        }
        eprintln!(
            "  wal {:>9} bytes, {:>4} txns -> recovered in {:>8} us ({} records)",
            state.wal.len(),
            report.txns_replayed,
            micros,
            report.records_replayed
        );
        recovery_rows.push((depth, state.wal.len(), report.records_replayed, micros));
    }

    // A checkpoint resets recovery to the clean-open floor.
    db.checkpoint().expect("checkpoint");
    let state = db.durable_state();
    let start = Instant::now();
    let (recovered, report) =
        DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
            .expect("post-checkpoint recovery");
    let post_ckpt_micros = start.elapsed().as_micros();
    if !report.clean {
        eprintln!("FAIL: post-checkpoint open was not clean: {report}");
        mismatches += 1;
    }
    if probe_skyline(recovered.db()) != probe_skyline(db.db()) {
        eprintln!("FAIL: post-checkpoint recovered answers diverge");
        mismatches += 1;
    }
    eprintln!("  post-checkpoint clean open: {post_ckpt_micros} us");

    // --- sweep 2: checkpoint overhead on write throughput -----------------
    let cadences: [(&str, Option<u64>); 4] =
        [("bare", None), ("wal_only", Some(0)), ("ckpt_every_64", Some(64)), ("ckpt_every_16", Some(16))];
    let mut throughput_rows = Vec::new();
    for (label, cadence) in cadences {
        let start = Instant::now();
        match cadence {
            None => {
                // Baseline: the same maintenance with no durability at all.
                let mut bare = PCubeDb::build(seed_relation(cfg.tuples), &PCubeConfig::default());
                let mut w = Workload::new(cfg.tuples, cfg.ops_per_txn);
                for t in 0..cfg.txns {
                    for op in w.txn(t) {
                        match op {
                            MaintenanceOp::Insert { codes, coords } => {
                                bare.insert_coded(&codes, &coords);
                            }
                            MaintenanceOp::Delete { tid } => {
                                bare.delete(tid);
                            }
                        }
                    }
                }
            }
            Some(every) => {
                let mut d = DurableDb::create(
                    seed_relation(cfg.tuples),
                    &PCubeConfig::default(),
                    DurabilityOptions {
                        fsync_every: 1,
                        checkpoint_every: every,
                        ..DurabilityOptions::default()
                    },
                );
                let mut w = Workload::new(cfg.tuples, cfg.ops_per_txn);
                for t in 0..cfg.txns {
                    d.apply(&w.txn(t)).expect("apply");
                }
            }
        }
        let secs = start.elapsed().as_secs_f64();
        let tps = cfg.txns as f64 / secs;
        eprintln!("  {label:>14}: {tps:>9.1} txns/s ({secs:.3} s)");
        throughput_rows.push((label, secs, tps));
    }

    // --- sweep 3: epoch publish cost vs database size ---------------------
    // Copy-on-write snapshots make publishing an epoch a handful of
    // refcount bumps, so the mean cost must not grow with the database.
    let publish_sizes: Vec<usize> =
        [10_000usize, 100_000, 1_000_000].into_iter().filter(|&s| s <= cfg.publish_max).collect();
    const PUBLISH_TXNS: usize = 64;
    let mut publish_rows = Vec::new();
    for &size in &publish_sizes {
        let mut d = DurableDb::create(
            seed_relation(size),
            &PCubeConfig::default(),
            DurabilityOptions {
                fsync_every: 1,
                checkpoint_every: 0,
                ..DurabilityOptions::default()
            },
        );
        let mut w = Workload::new(size, cfg.ops_per_txn);
        for t in 0..PUBLISH_TXNS {
            d.apply(&w.txn(t)).expect("apply");
        }
        let (publishes, ns) = d.publish_stats();
        let avg_ns = ns as f64 / publishes.max(1) as f64;
        eprintln!("  {size:>9} tuples: {publishes} publishes, {avg_ns:>9.0} ns each");
        publish_rows.push((size, publishes, avg_ns));
    }
    // Sub-microsecond publishes hit timer granularity; a 1 us floor keeps
    // the ratio about scaling, not clock jitter.
    let publish_floor = |ns: f64| ns.max(1_000.0);
    let publish_ratio = match (publish_rows.first(), publish_rows.last()) {
        (Some(&(_, _, small)), Some(&(_, _, large))) if publish_rows.len() > 1 => {
            publish_floor(large) / publish_floor(small)
        }
        _ => 1.0,
    };
    if publish_ratio > 1.5 {
        eprintln!(
            "FAIL: epoch publish cost grew {publish_ratio:.2}x from {} to {} tuples",
            publish_rows.first().map_or(0, |r| r.0),
            publish_rows.last().map_or(0, |r| r.0),
        );
        mismatches += 1;
    }

    // --- sweep 4: group commit vs one fsync per commit --------------------
    let group_txns = 256usize;
    let insert_txn = |k: usize| {
        vec![MaintenanceOp::Insert {
            codes: vec![(k % 8) as u32, (k % 8) as u32, (k % 8) as u32],
            coords: vec![(k as f64 * 0.2711 + 0.03).fract(), (k as f64 * 0.4131 + 0.17).fract()],
        }]
    };
    let durability = DurabilityOptions {
        fsync_every: 1,
        checkpoint_every: 0,
        fsync_delay_us: cfg.fsync_delay_us,
    };
    let mut base = DurableDb::create(seed_relation(cfg.tuples), &PCubeConfig::default(), durability);
    let start = Instant::now();
    for t in 0..group_txns {
        base.apply(&insert_txn(t)).expect("baseline apply");
    }
    let base_secs = start.elapsed().as_secs_f64();
    let base_tps = group_txns as f64 / base_secs;

    let queue = CommitQueue::start(
        DurableDb::create(seed_relation(cfg.tuples), &PCubeConfig::default(), durability),
        CommitQueuePolicy {
            max_batch: 32,
            max_queue: 64,
            max_wait: Duration::from_micros(100),
        },
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..8usize {
            let queue = &queue;
            scope.spawn(move || {
                for i in 0..group_txns / 8 {
                    queue.submit(insert_txn(thread * (group_txns / 8) + i)).expect("submit");
                }
            });
        }
    });
    let group_secs = start.elapsed().as_secs_f64();
    let group_tps = group_txns as f64 / group_secs;
    let group_stats = queue.stats();
    let grouped = queue.shutdown();
    if grouped.durable_txns() != group_txns as u64 {
        eprintln!("FAIL: group commit lost work ({} of {group_txns})", grouped.durable_txns());
        mismatches += 1;
    }
    let speedup = group_tps / base_tps;
    eprintln!(
        "  group commit: {group_tps:>9.1} txns/s vs {base_tps:>9.1} baseline ({speedup:.2}x, \
         {} batches, {:.2} commits/fsync)",
        group_stats.batches,
        group_stats.fsync_amortization()
    );
    if speedup < 3.0 {
        eprintln!("FAIL: group commit speedup {speedup:.2}x under the 3x gate");
        mismatches += 1;
    }

    // --- sweep 5: scrub + repair (self-healing) ---------------------------
    // Rot every live signature page, prove the degraded engine still answers
    // the probe exactly, then time the scrub pass and the WAL-routed repair.
    // Gates: degraded and healed answers must match the clean ones, and
    // blocks-per-probe must return to the clean baseline after repair.
    let mut heal = DurableDb::create(
        seed_relation(cfg.tuples),
        &PCubeConfig::default(),
        DurabilityOptions { fsync_every: 1, checkpoint_every: 0, ..DurabilityOptions::default() },
    );
    let mut w = Workload::new(cfg.tuples, cfg.ops_per_txn);
    for t in 0..cfg.txns.min(32) {
        heal.apply(&w.txn(t)).expect("apply");
    }
    heal.signature_store_mut().sig_pager_mut().set_checksums(true);
    // A *selected* probe — the empty selection never touches signatures, so
    // only a boolean-pruned query exercises the damaged pages.
    let selected_probe = |d: &PCubeDb| -> Vec<u64> {
        let sel = vec![Predicate { dim: 0, value: 1 }];
        let mut tids: Vec<u64> =
            skyline_query(d, &sel, &[0, 1], false).skyline.iter().map(|p| p.0).collect();
        tids.sort_unstable();
        tids
    };
    let probe_reads = |d: &DurableDb, want: &[u64], what: &str, mismatches: &mut u64| -> u64 {
        let answer = selected_probe(d.db()); // warm pass
        if answer != want {
            eprintln!("FAIL: {what} probe diverged");
            *mismatches += 1;
        }
        let before = d.db().stats().snapshot();
        selected_probe(d.db());
        d.db().stats().snapshot().since(&before).total_reads()
    };
    let want = selected_probe(heal.db());
    let reads_clean = probe_reads(&heal, &want, "clean", &mut mismatches);
    let sig_pages = {
        let pager = heal.signature_store_mut().sig_pager_mut();
        let page_size = pager.page_size();
        let pages = pager.live_page_ids();
        for (i, &pid) in pages.iter().enumerate() {
            pager.corrupt_page(pid, (i * 97) % page_size, 0x41).expect("corrupt live page");
        }
        pages.len()
    };
    let degraded_before = heal.db().stats().snapshot();
    let reads_degraded = probe_reads(&heal, &want, "degraded", &mut mismatches);
    let degraded_reads = heal.db().stats().snapshot().since(&degraded_before).degraded_reads();
    if degraded_reads == 0 {
        eprintln!("FAIL: degraded probe left no trace on the ledger");
        mismatches += 1;
    }
    let start = Instant::now();
    let scrub_report = heal.scrub(&QueryBudget::unlimited());
    let scrub_us = start.elapsed().as_micros();
    if (scrub_report.newly_quarantined + scrub_report.already_quarantined) as usize != sig_pages {
        eprintln!("FAIL: scrub missed damage: {scrub_report}");
        mismatches += 1;
    }
    let start = Instant::now();
    let repair = heal.repair().expect("repair");
    let repair_us = start.elapsed().as_micros();
    if repair.pages_healed as usize != sig_pages {
        eprintln!("FAIL: repair healed {} of {sig_pages} pages", repair.pages_healed);
        mismatches += 1;
    }
    let healed_before = heal.db().stats().snapshot();
    let reads_healed = probe_reads(&heal, &want, "healed", &mut mismatches);
    if heal.db().stats().snapshot().since(&healed_before).degraded_reads() > 0 {
        eprintln!("FAIL: healed store still issues degraded reads");
        mismatches += 1;
    }
    if reads_healed != reads_clean {
        eprintln!(
            "FAIL: blocks-per-probe did not recover ({reads_healed} healed vs {reads_clean} clean)"
        );
        mismatches += 1;
    }
    eprintln!(
        "  self-healing: {sig_pages} pages rotted; probe reads {reads_clean} clean -> \
         {reads_degraded} degraded -> {reads_healed} healed; scrub {scrub_us} us, \
         repair {repair_us} us ({} cells)",
        repair.cells_rebuilt
    );

    // --- emit ------------------------------------------------------------
    // Hand-rolled JSON (the workspace deliberately has no serde).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"recovery_bench\",");
    let _ = writeln!(json, "  \"tuples\": {},", cfg.tuples);
    let _ = writeln!(json, "  \"txns\": {},", cfg.txns);
    let _ = writeln!(json, "  \"ops_per_txn\": {},", cfg.ops_per_txn);
    json.push_str("  \"recovery_vs_wal\": [\n");
    for (i, (depth, wal_bytes, records, micros)) in recovery_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"txns\": {depth}, \"wal_bytes\": {wal_bytes}, \"records_replayed\": {records}, \"recovery_us\": {micros}}}"
        );
        json.push_str(if i + 1 < recovery_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"post_checkpoint_open_us\": {post_ckpt_micros},");
    json.push_str("  \"write_throughput\": [\n");
    for (i, (label, secs, tps)) in throughput_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{label}\", \"seconds\": {secs:.4}, \"txns_per_sec\": {tps:.1}}}"
        );
        json.push_str(if i + 1 < throughput_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"epoch_publish\": [\n");
    for (i, (size, publishes, avg_ns)) in publish_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"tuples\": {size}, \"publishes\": {publishes}, \"avg_publish_ns\": {avg_ns:.0}}}"
        );
        json.push_str(if i + 1 < publish_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"publish_flat_ratio\": {publish_ratio:.3},");
    json.push_str("  \"group_commit\": {\n");
    let _ = writeln!(json, "    \"fsync_delay_us\": {},", cfg.fsync_delay_us);
    let _ = writeln!(json, "    \"submitters\": 8,");
    let _ = writeln!(json, "    \"txns\": {group_txns},");
    let _ = writeln!(json, "    \"baseline_txns_per_sec\": {base_tps:.1},");
    let _ = writeln!(json, "    \"group_txns_per_sec\": {group_tps:.1},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "    \"batches\": {},", group_stats.batches);
    let _ = writeln!(json, "    \"max_batch\": {},", group_stats.max_batch);
    let _ = writeln!(
        json,
        "    \"fsync_amortization\": {:.2}",
        group_stats.fsync_amortization()
    );
    json.push_str("  },\n");
    json.push_str("  \"self_healing\": {\n");
    let _ = writeln!(json, "    \"sig_pages_rotted\": {sig_pages},");
    let _ = writeln!(json, "    \"probe_reads_clean\": {reads_clean},");
    let _ = writeln!(json, "    \"probe_reads_degraded\": {reads_degraded},");
    let _ = writeln!(json, "    \"probe_reads_healed\": {reads_healed},");
    let _ = writeln!(json, "    \"degraded_reads\": {degraded_reads},");
    let _ = writeln!(json, "    \"scrub_us\": {scrub_us},");
    let _ = writeln!(json, "    \"scrub_pages_scanned\": {},", scrub_report.pages_scanned);
    let _ = writeln!(json, "    \"repair_us\": {repair_us},");
    let _ = writeln!(json, "    \"cells_rebuilt\": {},", repair.cells_rebuilt);
    let _ = writeln!(json, "    \"pages_healed\": {}", repair.pages_healed);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"result_mismatches\": {mismatches}");
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).expect("write results json");
    println!("{json}");

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} recovered databases diverged from their masters");
        std::process::exit(1);
    }
    eprintln!("OK: recovery scales with WAL depth; checkpoint resets it; scrub+repair heals");
}
