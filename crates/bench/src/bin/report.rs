//! Regenerates every table/figure of the paper's evaluation (§VI).
//!
//! Usage: `report <figure> [--scale small|medium|full] [--seed N]`
//! where `<figure>` is one of `fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 all`, or `ablation` for the design-choice
//! studies DESIGN.md calls out (signature assembly, lossy Bloom signatures,
//! compression codecs, partial page size, materialization depth).
//!
//! Times are *modeled* seconds (CPU + per-page disk latencies from
//! `CostModel::default()`, a 2008-era disk) so that the disk-bound behaviour
//! the paper measures is visible even though this harness runs in RAM. Raw
//! I/O counters are printed alongside. See EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison.

use pcube_bench::*;
use pcube_core::{
    skyline_drill_down, skyline_query, skyline_query_probed, skyline_roll_up, LinearFn, PCube,
    PCubeConfig, PCubeDb,
};
use pcube_cube::{MaterializationPlan, Predicate, Selection};
use pcube_data::{
    covertype_surrogate, sample_linear_weights, sample_selection, synthetic, SyntheticSpec,
};
use pcube_rtree::{RTree, RTreeConfig};
use pcube_storage::{CostModel, IoCategory, IoStats, Pager, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure = String::from("all");
    let mut scale_name = String::from("small");
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale_name = args.get(i + 1).expect("--scale needs a value").clone();
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).expect("--seed needs a value").parse().expect("seed");
                i += 2;
            }
            other => {
                figure = other.to_string();
                i += 1;
            }
        }
    }
    let Some(scale) = Scale::try_named(&scale_name) else {
        eprintln!("unknown scale {scale_name:?}; use small, medium or full");
        std::process::exit(2);
    };
    println!(
        "# P-Cube evaluation — figure {figure}, scale {} (T sweep {:?}, default T {})\n",
        scale.name, scale.t_sweep, scale.t_default
    );
    let run_all = figure == "all";
    let mut ran = false;
    macro_rules! figure {
        ($name:literal, $f:expr) => {
            if run_all || figure == $name {
                ran = true;
                println!("\n==================== {} ====================", $name);
                $f;
            }
        };
    }
    figure!("fig5", fig5_construction(&scale, seed));
    figure!("fig6", fig6_size(&scale, seed));
    figure!("fig7", fig7_maintenance(&scale, seed));
    figure!("fig8", fig8_skyline_time(&scale, seed));
    figure!("fig9", fig9_disk_accesses(&scale, seed));
    figure!("fig10", fig10_peak_heap(&scale, seed));
    figure!("fig11", fig11_cardinality(&scale, seed));
    figure!("fig12", fig12_pref_dims(&scale, seed));
    figure!("fig13", fig13_topk(&scale, seed));
    figure!("fig14", fig14_covertype_predicates(&scale, seed));
    figure!("fig15", fig15_signature_loading(&scale, seed));
    figure!("fig16", fig16_drill_down(&scale, seed));
    if figure == "ablation" {
        ran = true;
        println!("\n==================== ablations ====================");
        ablation_assembly(&scale, seed);
        ablation_bloom(&scale, seed);
        ablation_compression(seed);
        ablation_page_size(&scale, seed);
        ablation_materialization(&scale, seed);
        ablation_per_cell_partitions(&scale, seed);
    }
    if !ran {
        eprintln!("unknown figure {figure:?}; use fig5..fig16, all, or ablation");
        std::process::exit(2);
    }
}

/// Ablation 0 (§IV-A): the paper's rejected second proposal — a private
/// data partition (R-tree) per cube cell — against the shared-template
/// P-Cube. Demonstrates why per-cell partitioning "is not scalable".
fn ablation_per_cell_partitions(scale: &Scale, seed: u64) {
    println!("\n-- ablation: per-cell R-trees (proposal 2) vs shared template + signatures --");
    let t = scale.t_default.min(100_000);
    let spec = default_spec(t, seed);
    let relation = pcube_data::synthetic(&spec);
    let stats = IoStats::new_shared();

    // Proposal 2: one R-tree per atomic cell.
    let started = Instant::now();
    let cfg = RTreeConfig::for_page(spec.n_pref, PAGE_SIZE);
    let mut per_cell_bytes = 0u64;
    for dim in 0..spec.n_bool {
        for (_, tids) in pcube_cube::group_by(&relation, pcube_cube::CuboidMask::atomic(dim)) {
            let items: Vec<(u64, Vec<f64>)> =
                tids.iter().map(|&tid| (tid, relation.pref_coords(tid))).collect();
            let pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, stats.clone());
            let tree = RTree::bulk_load(pager, cfg, items, 0.7);
            per_cell_bytes += tree.pager().size_bytes();
        }
    }
    let per_cell_seconds = started.elapsed().as_secs_f64();

    // P-Cube: one shared tree + signatures.
    let started = Instant::now();
    let db = PCubeDb::build(pcube_data::synthetic(&spec), &PCubeConfig::default());
    let pcube_seconds = started.elapsed().as_secs_f64();
    let pcube_bytes = db.rtree().pager().size_bytes() + db.pcube().size_bytes();

    print_header("approach", &["build s", "bytes"]);
    print_row_seconds("per-cell", &[per_cell_seconds, per_cell_bytes as f64]);
    print_row_seconds("p-cube", &[pcube_seconds, pcube_bytes as f64]);
    println!(
        "(per-cell stores every tuple once per materialized cuboid — {}x the bytes)",
        (per_cell_bytes as f64 / pcube_bytes as f64).round()
    );
}

/// Ablation 1 (DESIGN.md): lazy per-cursor AND vs eager intersection with
/// the recursive fix-up for multi-predicate probes.
fn ablation_assembly(scale: &Scale, seed: u64) {
    println!("\n-- ablation: lazy vs eager signature assembly (2 predicates) --");
    let bench = build(&default_spec(scale.t_default.min(200_000), seed));
    let cost = CostModel::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA1);
    print_header("probe", &["modeled s", "rtree blk", "sig pages"]);
    for (name, eager) in [("lazy", false), ("eager", true)] {
        let mut ms = Vec::new();
        let mut rng2 = rng.clone();
        for _ in 0..scale.queries {
            let sel = sample_selection(bench.db.relation(), 2, &mut rng2);
            bench.db.stats().reset();
            let out = skyline_query(&bench.db, &sel, &[0, 1, 2], eager);
            ms.push(Measurement::from_stats(&out.stats, out.skyline.len(), &cost));
        }
        let m = Measurement::mean(&ms);
        print_row_seconds(
            name,
            &[
                m.seconds,
                m.io.reads(IoCategory::RtreeBlock) as f64,
                m.io.reads(IoCategory::SignaturePage) as f64,
            ],
        );
    }
    let _ = &mut rng;
}

/// Ablation 2 (§VII): lossy Bloom signatures vs exact signatures.
fn ablation_bloom(scale: &Scale, seed: u64) {
    println!("\n-- ablation: exact signatures vs lossy Bloom signatures --");
    let bench = build(&default_spec(scale.t_default.min(200_000), seed));
    let cost = CostModel::default();
    print_header("probe", &["modeled s", "rtree blk", "verify I/O"]);
    let run_one = |name: &str, fp: Option<f64>| {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB1);
        let mut ms = Vec::new();
        for _ in 0..scale.queries {
            let sel = sample_selection(bench.db.relation(), 1, &mut rng);
            bench.db.stats().reset();
            let out = match fp {
                None => skyline_query(&bench.db, &sel, &[0, 1, 2], false),
                Some(rate) => {
                    let probe = bench.db.pcube().probe_bloom(&sel, rate);
                    skyline_query_probed(&bench.db, &sel, &[0, 1, 2], probe)
                }
            };
            ms.push(Measurement::from_stats(&out.stats, out.skyline.len(), &cost));
        }
        let m = Measurement::mean(&ms);
        print_row_seconds(
            name,
            &[
                m.seconds,
                m.io.reads(IoCategory::RtreeBlock) as f64,
                m.io.reads(IoCategory::TupleRandomAccess) as f64,
            ],
        );
    };
    run_one("exact", None);
    run_one("bloom 1%", Some(0.01));
    run_one("bloom 10%", Some(0.10));
}

/// Ablation 3 (§IV-B.1): per-node codec choice — bytes per codec over the
/// node arrays of real signatures.
fn ablation_compression(seed: u64) {
    use pcube_bitmap::{AdaptiveCodec, Codec, LiteralCodec, RleCodec, WahCodec};
    println!("\n-- ablation: node-level compression codecs (total signature bytes) --");
    let bench = build(&default_spec(100_000, seed));
    let mut totals = [0usize; 4];
    let mut nodes = 0usize;
    for cell in 0..bench.db.pcube().registry().len() as u32 {
        let sig = bench.db.pcube().store().load_full(cell);
        for (_, bits) in sig.iter_nodes() {
            nodes += 1;
            totals[0] += LiteralCodec.encode(bits).len();
            totals[1] += RleCodec.encode(bits).len();
            totals[2] += WahCodec.encode(bits).len();
            totals[3] += AdaptiveCodec.encode(bits).len();
        }
    }
    print_header("codec", &["bytes", "bytes/node"]);
    for (name, total) in ["literal", "rle", "wah", "adaptive"].iter().zip(totals) {
        print_row_seconds(name, &[total as f64, total as f64 / nodes as f64]);
    }
}

/// Ablation 4 (§IV-B.1): the partial-signature page size P.
fn ablation_page_size(scale: &Scale, seed: u64) {
    println!("\n-- ablation: partial-signature page size (signature store bytes, pages) --");
    let spec = default_spec(scale.t_default.min(200_000), seed);
    print_header("page", &["store bytes", "partials"]);
    for page in [512usize, 1024, 4096, 16384] {
        let cfg = PCubeConfig { page_size: page, ..PCubeConfig::default() };
        let db = PCubeDb::build(pcube_data::synthetic(&spec), &cfg);
        print_row_seconds(
            &page.to_string(),
            &[db.pcube().size_bytes() as f64, db.pcube().store().partial_count() as f64],
        );
    }
}

/// Ablation 5 (§IV-B.2): atomic-only vs level-2 materialization.
fn ablation_materialization(scale: &Scale, seed: u64) {
    println!("\n-- ablation: atomic cuboids vs level-2 materialization (2-pred skylines) --");
    let spec = default_spec(scale.t_default.min(100_000), seed);
    let cost = CostModel::default();
    print_header("plan", &["build s", "store MB", "query s"]);
    for (name, plan) in [
        ("atomic", MaterializationPlan::Atomic),
        ("level-2", MaterializationPlan::UpToLevel(2)),
    ] {
        let started = Instant::now();
        let cfg = PCubeConfig { plan, ..PCubeConfig::default() };
        let db = PCubeDb::build(pcube_data::synthetic(&spec), &cfg);
        let build_s = started.elapsed().as_secs_f64();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1);
        let mut total = 0.0;
        for _ in 0..scale.queries {
            let sel = sample_selection(db.relation(), 2, &mut rng);
            db.stats().reset();
            let out = skyline_query(&db, &sel, &[0, 1, 2], false);
            total += out.stats.cpu_seconds + cost.seconds(&out.stats.io);
        }
        print_row_seconds(
            name,
            &[
                build_s,
                db.pcube().size_bytes() as f64 / (1024.0 * 1024.0),
                total / scale.queries as f64,
            ],
        );
    }
}

fn fmt_t(t: usize) -> String {
    if t.is_multiple_of(1_000_000) && t > 0 {
        format!("{}M", t / 1_000_000)
    } else if t.is_multiple_of(1_000) {
        format!("{}k", t / 1_000)
    } else {
        t.to_string()
    }
}

/// Fig 5: construction time vs T for R-tree (dynamic insertion, as Guttman
/// builds it), P-Cube (signature computation over the shared tree) and
/// B+-trees (sorted bulk load of every boolean dimension).
fn fig5_construction(scale: &Scale, seed: u64) {
    println!("Construction time (wall seconds).");
    println!("Paper shape: P-Cube 7-8x faster than R-tree, comparable to B+-tree.\n");
    print_header("T", &["R-tree", "P-Cube", "B-tree", "R-tree(STR)"]);
    for &t in &scale.t_sweep {
        let spec = default_spec(t, seed);
        let relation = synthetic(&spec);
        let stats = IoStats::new_shared();
        let items: Vec<(u64, Vec<f64>)> =
            (0..relation.len() as u64).map(|i| (i, relation.pref_coords(i))).collect();

        // R-tree by one-at-a-time insertion (the paper's construction).
        let started = Instant::now();
        let pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, stats.clone());
        let cfg = RTreeConfig::for_page(spec.n_pref, PAGE_SIZE);
        let mut rtree_ins = RTree::new(pager, cfg);
        for (tid, coords) in &items {
            rtree_ins.insert(*tid, coords);
        }
        let rtree_seconds = started.elapsed().as_secs_f64();

        // STR bulk load, for reference.
        let started = Instant::now();
        let pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, stats.clone());
        let rtree = RTree::bulk_load(pager, cfg, items, 1.0);
        let str_seconds = started.elapsed().as_secs_f64();

        // P-Cube: signatures over the existing partition.
        let started = Instant::now();
        let pcube =
            PCube::build(&relation, &rtree, &MaterializationPlan::Atomic, PAGE_SIZE, stats.clone());
        let pcube_seconds = started.elapsed().as_secs_f64();
        let _ = pcube;

        // B+-trees over every boolean dimension.
        let started = Instant::now();
        let indexes =
            pcube_baselines::BooleanIndexSet::build(&relation, PAGE_SIZE, stats.clone());
        let btree_seconds = started.elapsed().as_secs_f64();
        let _ = indexes;

        print_row_seconds(
            &fmt_t(t),
            &[rtree_seconds, pcube_seconds, btree_seconds, str_seconds],
        );
    }
}

/// Fig 6: materialized size vs T.
fn fig6_size(scale: &Scale, seed: u64) {
    println!("Materialized size.");
    println!("Paper shape: P-Cube ~2x smaller than B+-trees, ~8x smaller than R-tree.\n");
    print_header("T", &["R-tree", "P-Cube", "B-tree"]);
    for &t in &scale.t_sweep {
        let bench = build(&default_spec(t, seed));
        let rtree_b = bench.db.rtree().pager().size_bytes();
        let pcube_b = bench.db.pcube().size_bytes();
        let btree_b = bench.indexes.size_bytes();
        print!("{:<14}", fmt_t(t));
        for b in [rtree_b, pcube_b, btree_b] {
            print!("{:>14}", fmt_bytes(b));
        }
        println!();
    }
}

/// Fig 7: incremental update time for 1/10/100 inserted tuples vs full
/// recomputation.
fn fig7_maintenance(scale: &Scale, seed: u64) {
    let t = scale.t_default;
    println!("Incremental maintenance on T = {} (wall seconds).", fmt_t(t));
    println!("Paper shape: incremental << recompute; batches amortize per-tuple cost.\n");
    let spec = default_spec(t, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 7);
    print_header("inserted", &["incremental", "per-tuple", "recompute"]);
    for n_insert in [1usize, 10, 100] {
        let mut db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
        let mut coords = vec![0.0f64; spec.n_pref];
        let started = Instant::now();
        for _ in 0..n_insert {
            use rand::Rng;
            let codes: Vec<u32> =
                (0..spec.n_bool).map(|_| rng.gen_range(0..spec.cardinality)).collect();
            pcube_data::sample_pref(&mut rng, spec.distribution, &mut coords);
            db.insert_coded(&codes, &coords);
        }
        let incremental = started.elapsed().as_secs_f64();

        // Full recomputation of every signature (the non-incremental
        // alternative the paper compares against).
        let started = Instant::now();
        let stats = IoStats::new_shared();
        let _ = PCube::build(
            db.relation(),
            db.rtree(),
            &MaterializationPlan::Atomic,
            PAGE_SIZE,
            stats,
        );
        let recompute = started.elapsed().as_secs_f64();
        print_row_seconds(
            &n_insert.to_string(),
            &[incremental, incremental / n_insert as f64, recompute],
        );
    }
}

fn skyline_sweep_row(
    bench: &Bench,
    scale: &Scale,
    seed: u64,
    pref_dims: &[usize],
) -> (Measurement, Measurement, Measurement, Measurement) {
    let cost = CostModel::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let mut sig = Vec::new();
    let mut boolean = Vec::new();
    let mut bool_idx = Vec::new();
    let mut dom = Vec::new();
    for _ in 0..scale.queries {
        let sel = sample_selection(bench.db.relation(), 1, &mut rng);
        sig.push(measure_signature_skyline(bench, &sel, pref_dims, &cost));
        boolean.push(measure_boolean_skyline(bench, &sel, pref_dims, &cost));
        bool_idx.push(measure_boolean_skyline_via(
            bench,
            &sel,
            pref_dims,
            &cost,
            pcube_baselines::SelectRoute::Index,
        ));
        dom.push(measure_domination_skyline(bench, &sel, pref_dims, &cost));
    }
    (
        Measurement::mean(&sig),
        Measurement::mean(&boolean),
        Measurement::mean(&bool_idx),
        Measurement::mean(&dom),
    )
}

/// Fig 8: skyline execution time vs T (single boolean predicate).
fn fig8_skyline_time(scale: &Scale, seed: u64) {
    println!("Skyline execution time vs T (modeled seconds, 1 predicate).");
    println!("Paper shape: Signature >= 10x faster than Boolean and Domination.");
    println!("Boolean = best-of(scan, index); Bool(idx) = the unclustered index-scan");
    println!("variant whose cost the paper's Boolean series exhibits (see EXPERIMENTS.md).\n");
    print_header("T", &["Boolean", "Bool(idx)", "Domination", "Signature"]);
    for &t in &scale.t_sweep {
        let bench = build(&default_spec(t, seed));
        let (sig, boolean, bool_idx, dom) = skyline_sweep_row(&bench, scale, seed, &[0, 1, 2]);
        print_row_seconds(
            &fmt_t(t),
            &[boolean.seconds, bool_idx.seconds, dom.seconds, sig.seconds],
        );
    }
}

/// Fig 9: disk-access breakdown vs T: DBool/DBlock (Domination) and
/// SBlock/SSig (Signature).
fn fig9_disk_accesses(scale: &Scale, seed: u64) {
    println!("Disk accesses vs T (counts, 1 predicate).");
    println!("Paper shape: SSig <= 1% of SBlock; SBlock < 2/3 of DBlock; DBool large.\n");
    print_header("T", &["DBool", "DBlock", "SBlock", "SSig"]);
    for &t in &scale.t_sweep {
        let bench = build(&default_spec(t, seed));
        let (sig, _, _, dom) = skyline_sweep_row(&bench, scale, seed, &[0, 1, 2]);
        print_row_counts(
            &fmt_t(t),
            &[
                dom.io.reads(IoCategory::TupleRandomAccess),
                dom.io.reads(IoCategory::RtreeBlock),
                sig.io.reads(IoCategory::RtreeBlock),
                sig.io.reads(IoCategory::SignaturePage),
            ],
        );
    }
}

/// Fig 10: peak candidate-heap size vs T.
fn fig10_peak_heap(scale: &Scale, seed: u64) {
    println!("Peak candidate-heap size vs T (entries, 1 predicate).");
    println!("Paper shape: Signature ~10x smaller than Domination and Boolean.\n");
    print_header("T", &["Boolean", "Domination", "Signature"]);
    for &t in &scale.t_sweep {
        let bench = build(&default_spec(t, seed));
        let (sig, boolean, _, dom) = skyline_sweep_row(&bench, scale, seed, &[0, 1, 2]);
        print_row_counts(
            &fmt_t(t),
            &[boolean.peak_heap as u64, dom.peak_heap as u64, sig.peak_heap as u64],
        );
    }
}

/// Fig 11: skyline time vs boolean cardinality C (T fixed).
fn fig11_cardinality(scale: &Scale, seed: u64) {
    let t = scale.t_default;
    println!("Skyline time vs boolean cardinality C (modeled seconds, T = {}).", fmt_t(t));
    println!("Paper shape: Boolean improves with C, Domination degrades, Signature best.\n");
    print_header("C", &["Boolean", "Domination", "Signature"]);
    for c in [10u32, 100, 1000] {
        let spec = SyntheticSpec { cardinality: c, ..default_spec(t, seed) };
        let bench = build(&spec);
        let (sig, boolean, _, dom) = skyline_sweep_row(&bench, scale, seed, &[0, 1, 2]);
        print_row_seconds(&c.to_string(), &[boolean.seconds, dom.seconds, sig.seconds]);
    }
}

/// Fig 12: skyline time vs number of preference dimensions.
fn fig12_pref_dims(scale: &Scale, seed: u64) {
    let t = scale.t_default;
    println!("Skyline time vs preference dimensions Dp (modeled seconds, T = {}).", fmt_t(t));
    println!("Paper shape: Domination degrades with Dp, Boolean flat, Signature best.\n");
    print_header("Dp", &["Boolean", "Domination", "Signature"]);
    for dp in [2usize, 3, 4] {
        let spec = SyntheticSpec { n_pref: dp, ..default_spec(t, seed) };
        let bench = build(&spec);
        let dims: Vec<usize> = (0..dp).collect();
        let (sig, boolean, _, dom) = skyline_sweep_row(&bench, scale, seed, &dims);
        print_row_seconds(&dp.to_string(), &[boolean.seconds, dom.seconds, sig.seconds]);
    }
}

/// Fig 13: top-k time vs k with a random positive linear function.
fn fig13_topk(scale: &Scale, seed: u64) {
    let t = scale.t_default;
    println!("Top-k time vs k, f = aX+bY+cZ (modeled seconds, T = {}).", fmt_t(t));
    println!("Paper shape: Signature best; beats IndexMerge; Ranking good at small k;");
    println!("Boolean flat in k.\n");
    let bench = build(&default_spec(t, seed));
    let cost = CostModel::default();
    print_header("k", &["Boolean", "Ranking", "IndexMerge", "Signature"]);
    for k in [10usize, 20, 50, 100] {
        let mut rng = StdRng::seed_from_u64(seed ^ k as u64);
        let mut rows = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..scale.queries {
            let sel = sample_selection(bench.db.relation(), 1, &mut rng);
            let f = LinearFn::new(sample_linear_weights(3, &mut rng));
            rows[0].push(measure_boolean_topk(&bench, &sel, k, &f, &cost));
            rows[1].push(measure_ranking_topk(&bench, &sel, k, &f, &cost));
            rows[2].push(measure_index_merge_topk(&bench, &sel, k, &f, &cost));
            rows[3].push(measure_signature_topk(&bench, &sel, k, &f, &cost));
        }
        print_row_seconds(
            &k.to_string(),
            &[
                Measurement::mean(&rows[0]).seconds,
                Measurement::mean(&rows[1]).seconds,
                Measurement::mean(&rows[2]).seconds,
                Measurement::mean(&rows[3]).seconds,
            ],
        );
    }
}

fn covertype_bench(scale: &Scale, seed: u64) -> Bench {
    println!("(building CoverType surrogate, {} rows …)", scale.covertype_rows);
    build_from(covertype_surrogate(scale.covertype_rows, seed))
}

/// Fig 14: skyline time vs number of boolean predicates on CoverType.
fn fig14_covertype_predicates(scale: &Scale, seed: u64) {
    println!("Skyline time vs #predicates on the CoverType surrogate (modeled s).");
    println!("Paper shape: Signature & Boolean flat; Domination grows sharply.\n");
    let bench = covertype_bench(scale, seed);
    let cost = CostModel::default();
    let dims = [0, 1, 2];
    print_header("#preds", &["Boolean", "Domination", "Signature"]);
    for n_preds in 1..=4usize {
        let mut rng = StdRng::seed_from_u64(seed ^ (n_preds as u64) << 8);
        let mut rows = [Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..scale.queries {
            let sel = sample_selection(bench.db.relation(), n_preds, &mut rng);
            rows[0].push(measure_boolean_skyline(&bench, &sel, &dims, &cost));
            rows[1].push(measure_domination_skyline(&bench, &sel, &dims, &cost));
            rows[2].push(measure_signature_skyline(&bench, &sel, &dims, &cost));
        }
        print_row_seconds(
            &n_preds.to_string(),
            &[
                Measurement::mean(&rows[0]).seconds,
                Measurement::mean(&rows[1]).seconds,
                Measurement::mean(&rows[2]).seconds,
            ],
        );
    }
}

/// Fig 15: signature loading time vs query processing time.
fn fig15_signature_loading(scale: &Scale, seed: u64) {
    println!("Signature loading vs query time on CoverType (modeled seconds).");
    println!("Paper shape: loading grows slightly with #predicates, stays < 10%.\n");
    let bench = covertype_bench(scale, seed);
    let cost = CostModel::default();
    print_header("#preds", &["Load", "Query", "Load %", "sig pages", "dir pages"]);
    for n_preds in 1..=4usize {
        let mut rng = StdRng::seed_from_u64(seed ^ (n_preds as u64) << 9);
        let mut load = 0.0;
        let mut query = 0.0;
        let mut sig_pages = 0u64;
        let mut dir_pages = 0u64;
        for _ in 0..scale.queries {
            let sel = sample_selection(bench.db.relation(), n_preds, &mut rng);
            let m = measure_signature_skyline(&bench, &sel, &[0, 1, 2], &cost);
            let l = modeled_io(
                &m.io,
                &cost,
                &[IoCategory::SignaturePage, IoCategory::BptreePage],
            );
            load += l;
            query += m.seconds - l;
            sig_pages += m.io.reads(IoCategory::SignaturePage);
            dir_pages += m.io.reads(IoCategory::BptreePage);
        }
        let n = scale.queries as f64;
        print_row_seconds(
            &n_preds.to_string(),
            &[
                load / n,
                query / n,
                100.0 * load / (load + query),
                sig_pages as f64 / n,
                dir_pages as f64 / n,
            ],
        );
    }
}

/// Fig 16: drill-down (and roll-up) continuation vs a fresh query.
fn fig16_drill_down(scale: &Scale, seed: u64) {
    println!("Drill-down / roll-up vs new query on CoverType (modeled seconds).");
    println!("Paper shape: large speed-up from reusing cached lists (Lemma 2).\n");
    let bench = covertype_bench(scale, seed);
    let cost = CostModel::default();
    print_header("#preds", &["NewQuery", "DrillDown", "RollUpFrom", "RollUp"]);
    for n_preds in 2..=4usize {
        let mut rng = StdRng::seed_from_u64(seed ^ (n_preds as u64) << 10);
        let mut fresh_s = 0.0;
        let mut drill_s = 0.0;
        let mut roll_from_s = 0.0;
        let mut roll_s = 0.0;
        for _ in 0..scale.queries {
            let sel = sample_selection(bench.db.relation(), n_preds, &mut rng);
            let base: Selection = sel[..n_preds - 1].to_vec();
            let extra: Predicate = sel[n_preds - 1];
            // Step 1: query with k-1 predicates (not measured here).
            bench.db.stats().reset();
            let first = skyline_query(&bench.db, &base, &[0, 1, 2], false);
            // Step 2a: drill down with the k-th predicate.
            bench.db.stats().reset();
            let drilled = skyline_drill_down(&bench.db, first.state, extra);
            drill_s += drilled.stats.cpu_seconds + cost.seconds(&drilled.stats.io);
            // Step 2b: the same query from scratch.
            bench.db.stats().reset();
            let fresh = skyline_query(&bench.db, &sel, &[0, 1, 2], false);
            fresh_s += fresh.stats.cpu_seconds + cost.seconds(&fresh.stats.io);
            assert_eq!(drilled.skyline.len(), fresh.skyline.len());
            // Roll-up: remove the k-th predicate again, continuing from the
            // drilled state; compare against the fresh (k-1)-pred query.
            bench.db.stats().reset();
            let rolled = skyline_roll_up(&bench.db, drilled.state, extra.dim);
            roll_s += rolled.stats.cpu_seconds + cost.seconds(&rolled.stats.io);
            bench.db.stats().reset();
            let fresh_base = skyline_query(&bench.db, &base, &[0, 1, 2], false);
            roll_from_s += fresh_base.stats.cpu_seconds + cost.seconds(&fresh_base.stats.io);
            assert_eq!(rolled.skyline.len(), fresh_base.skyline.len());
        }
        let n = scale.queries as f64;
        print_row_seconds(
            &n_preds.to_string(),
            &[fresh_s / n, drill_s / n, roll_from_s / n, roll_s / n],
        );
    }
}
