//! Concurrent-throughput harness: M client threads hammer one shared
//! [`PCubeDb`] with a mixed preference-query workload (top-k, skyline,
//! dynamic skyline, convex hull), verifying on the fly that
//!
//! * every answer is **bit-identical** to the single-threaded answer, and
//! * the atomic I/O ledger's total delta equals the sum of per-query serial
//!   deltas (counter consistency — no lost updates, no double charges).
//!
//! Any mismatch or counter drift makes the process exit non-zero, so CI can
//! run this as a smoke gate.
//!
//! Two throughput numbers are reported per thread count:
//!
//! * `qps_wall` — raw wall-clock queries/second, measured with a simulated
//!   per-page read latency (`--wall-io-us`, default 100 µs) charged inside
//!   `Pager::try_read` with **no lock held**. Even on a single-core
//!   container this scales with client threads — but only if no shared
//!   lock is held across a page read, which makes it the end-to-end gate
//!   for read-path contention (`--min-wall-speedup`).
//! * `qps_modeled` — queries/second under the repository's disk cost model
//!   (see `CostModel`): each query is charged its measured CPU time plus
//!   modeled per-page latencies, and client threads overlap their modeled
//!   I/O stalls independently (per-client disk assumption, consistent with
//!   how every figure runner charges I/O). This is the number the
//!   concurrency experiment records, because the evaluation — like the
//!   paper's — is about overlapping disk time, which a RAM-resident
//!   reproduction can only model.
//!
//! Each config also reports a per-stage wall-time breakdown (`stage_seconds`)
//! summed across clients: `pin` (probe/heap setup), `page_read` (signature
//! probes, node reads, verify fetches), `score` (preference logic), `merge`
//! (canonical sort / cross-worker merge).
//!
//! Usage: `serve_bench [--scale small|medium|full] [--threads 1,2,4,8]
//! [--queries N] [--seed S] [--out PATH] [--min-speedup X]
//! [--wall-io-us US] [--min-wall-speedup X]`
//!
//! Results land in `BENCH_concurrency.json` (override with `--out`).

use pcube_core::{AdmissionGate, LinearFn, PCubeConfig, PCubeDb, StageTimes};
use pcube_cube::Selection;
use pcube_data::{sample_selection, synthetic, Distribution, SyntheticSpec};
use pcube_storage::{CostModel, IoCategory, IoSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One query of the mixed workload.
#[derive(Clone)]
enum Query {
    TopK { sel: Selection, k: usize, weights: Vec<f64> },
    Skyline { sel: Selection },
    Dynamic { sel: Selection, q: Vec<f64> },
    Hull { sel: Selection },
}

impl Query {
    fn kind(&self) -> &'static str {
        match self {
            Query::TopK { .. } => "topk",
            Query::Skyline { .. } => "skyline",
            Query::Dynamic { .. } => "dynamic",
            Query::Hull { .. } => "hull",
        }
    }
}

/// A canonicalized answer, comparable with `==` across threads and runs.
#[derive(Clone, PartialEq)]
enum Answer {
    TopK(Vec<(u64, Vec<f64>, f64)>),
    Skyline(Vec<(u64, Vec<f64>)>),
    Hull(Vec<(u64, [f64; 2])>),
}

fn run_query(db: &PCubeDb, q: &Query) -> (Answer, StageTimes) {
    match q {
        Query::TopK { sel, k, weights } => {
            let out = db.topk(sel, *k, &LinearFn::new(weights.clone()));
            (Answer::TopK(out.topk), out.stats.stages)
        }
        Query::Skyline { sel } => {
            let out = db.skyline(sel, &[0, 1]);
            (Answer::Skyline(out.skyline), out.stats.stages)
        }
        Query::Dynamic { sel, q } => {
            let out = db.dynamic_skyline(sel, q, &[0, 1]);
            (Answer::Skyline(out.skyline), out.stats.stages)
        }
        Query::Hull { sel } => {
            let out = db.hull(sel, (0, 1));
            (Answer::Hull(out.hull), out.stats.stages)
        }
    }
}

struct Config {
    scale: String,
    threads: Vec<usize>,
    queries: usize,
    seed: u64,
    out: String,
    min_speedup: f64,
    wall_io_us: u64,
    min_wall_speedup: f64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        scale: "medium".into(),
        threads: vec![1, 2, 4, 8],
        queries: 0, // 0 = pick per scale
        seed: 42,
        out: "BENCH_concurrency.json".into(),
        min_speedup: 3.0,
        wall_io_us: 100,
        min_wall_speedup: 0.0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |n: usize| {
            args.get(n).unwrap_or_else(|| {
                eprintln!("{} needs a value", args[n - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = need(i + 1).clone();
                i += 2;
            }
            "--threads" => {
                cfg.threads = need(i + 1)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads takes e.g. 1,2,4,8"))
                    .collect();
                i += 2;
            }
            "--queries" => {
                cfg.queries = need(i + 1).parse().expect("--queries takes a count");
                i += 2;
            }
            "--seed" => {
                cfg.seed = need(i + 1).parse().expect("--seed takes a number");
                i += 2;
            }
            "--out" => {
                cfg.out = need(i + 1).clone();
                i += 2;
            }
            "--min-speedup" => {
                cfg.min_speedup = need(i + 1).parse().expect("--min-speedup takes a float");
                i += 2;
            }
            "--wall-io-us" => {
                cfg.wall_io_us =
                    need(i + 1).parse().expect("--wall-io-us takes microseconds (0 disables)");
                i += 2;
            }
            "--min-wall-speedup" => {
                cfg.min_wall_speedup =
                    need(i + 1).parse().expect("--min-wall-speedup takes a float");
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn scale_params(scale: &str) -> (usize, usize) {
    // (tuples, default total queries per thread-count config)
    match scale {
        "small" => (20_000, 256),
        "medium" => (100_000, 512),
        "full" => (1_000_000, 1024),
        other => {
            eprintln!("unknown scale {other:?}; use small, medium or full");
            std::process::exit(2);
        }
    }
}

fn build_workload(db: &PCubeDb, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let sel = sample_selection(db.relation(), i % 3, &mut rng);
            match i % 4 {
                0 => Query::TopK {
                    sel,
                    k: 5 + i % 20,
                    weights: vec![0.15 + 0.1 * (i % 8) as f64, 0.95 - 0.1 * (i % 6) as f64],
                },
                1 => Query::Skyline { sel },
                2 => Query::Dynamic {
                    sel,
                    q: vec![0.1 * (i % 10) as f64, 1.0 - 0.1 * (i % 10) as f64],
                },
                _ => Query::Hull { sel },
            }
        })
        .collect()
}

struct ConfigResult {
    threads: usize,
    wall_seconds: f64,
    qps_wall: f64,
    qps_modeled: f64,
    p50_us: u64,
    p99_us: u64,
    mismatches: u64,
    counter_consistent: bool,
    /// Self-healing counters over the run: a healthy serving harness must
    /// see zero degraded reads, quarantines, and repairs.
    degraded_reads: u64,
    pages_quarantined: u64,
    pages_repaired: u64,
    /// Per-stage wall time summed over every executed query (all clients).
    stages: StageTimes,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

#[allow(clippy::too_many_arguments)]
fn run_config(
    db: &PCubeDb,
    workload: &[Query],
    expected: &[Answer],
    per_query_io: &[IoSnapshot],
    cost: &CostModel,
    threads: usize,
    total_queries: usize,
) -> ConfigResult {
    let mismatches = AtomicU64::new(0);
    let next = AtomicU64::new(0);
    let before = db.stats().snapshot();
    let started = Instant::now();
    // Dynamic dispatch, like a real query router: each client thread grabs
    // the next pending query index; workload entries repeat round-robin
    // until `total_queries` are issued. Every index in 0..total_queries is
    // executed exactly once regardless of the schedule.
    let per_thread: Vec<(Vec<(u64, u64)>, StageTimes)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (mismatches, next) = (&mismatches, &next);
                scope.spawn(move || {
                    let mut done: Vec<(u64, u64)> = Vec::new(); // (index, µs)
                    let mut stages = StageTimes::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= total_queries {
                            break;
                        }
                        let w = i % workload.len();
                        let q_started = Instant::now();
                        // The gate is sized to the widest thread count, so
                        // measured configs are admitted without shedding —
                        // but every query still pays the admission path.
                        let permit =
                            db.admit().expect("gate sized to the widest config never sheds");
                        let (got, query_stages) = run_query(db, &workload[w]);
                        drop(permit);
                        done.push((i as u64, q_started.elapsed().as_micros() as u64));
                        stages.add(&query_stages);
                        if got != expected[w] {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    (done, stages)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    let delta = db.stats().snapshot().since(&before);

    // Counter consistency: expected totals from the deterministic per-query
    // serial deltas, times each workload entry's execution count.
    let mut consistent = true;
    for cat in IoCategory::ALL {
        let mut expect_reads = 0u64;
        let mut expect_writes = 0u64;
        for (w, io) in per_query_io.iter().enumerate() {
            let execs = (total_queries / workload.len()
                + usize::from(w < total_queries % workload.len())) as u64;
            expect_reads += io.reads(cat) * execs;
            expect_writes += io.writes(cat) * execs;
        }
        if delta.reads(cat) != expect_reads || delta.writes(cat) != expect_writes {
            eprintln!(
                "counter drift in {cat}: reads {} (expected {expect_reads}), writes {} (expected {expect_writes})",
                delta.reads(cat),
                delta.writes(cat),
            );
            consistent = false;
        }
    }
    // The self-healing ledger is part of the same gate: a read-only serving
    // run over a healthy store must never degrade, quarantine, or repair —
    // any nonzero delta here means silent damage (or a double charge).
    if delta.degraded_reads() != 0
        || delta.pages_quarantined() != 0
        || delta.pages_repaired() != 0
    {
        eprintln!(
            "self-healing drift: degraded_reads {}, pages_quarantined {}, pages_repaired {}",
            delta.degraded_reads(),
            delta.pages_quarantined(),
            delta.pages_repaired(),
        );
        consistent = false;
    }

    // Modeled makespan: charge each executed query its measured CPU time
    // plus the cost model's I/O time, then list-schedule the instances in
    // issue order onto `threads` modeled clients (each query goes to the
    // earliest-available client — exactly what the dynamic dispatcher above
    // does in wall time, replayed in modeled time).
    let mut stages = StageTimes::default();
    for (_, thread_stages) in &per_thread {
        stages.add(thread_stages);
    }

    let mut instance_cost: Vec<f64> = vec![0.0; total_queries];
    for &(i, us) in per_thread.iter().flat_map(|(done, _)| done) {
        instance_cost[i as usize] =
            us as f64 * 1e-6 + cost.seconds(&per_query_io[i as usize % workload.len()]);
    }
    let mut client_busy_until = vec![0.0f64; threads];
    for c in instance_cost {
        let earliest = client_busy_until
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).expect("finite modeled times"))
            .expect("at least one client");
        *earliest += c;
    }
    let modeled_makespan = client_busy_until.into_iter().fold(0.0f64, f64::max);

    let mut all_lat: Vec<u64> = per_thread
        .into_iter()
        .flat_map(|(done, _)| done)
        .map(|(_, us)| us)
        .collect();
    all_lat.sort_unstable();
    ConfigResult {
        threads,
        wall_seconds,
        qps_wall: total_queries as f64 / wall_seconds,
        qps_modeled: total_queries as f64 / modeled_makespan.max(1e-12),
        p50_us: percentile(&all_lat, 0.50),
        p99_us: percentile(&all_lat, 0.99),
        mismatches: mismatches.load(Ordering::Relaxed),
        counter_consistent: consistent,
        degraded_reads: delta.degraded_reads(),
        pages_quarantined: delta.pages_quarantined(),
        pages_repaired: delta.pages_repaired(),
        stages,
    }
}

fn main() {
    let cfg = parse_args();
    let (tuples, default_queries) = scale_params(&cfg.scale);
    let total_queries = if cfg.queries > 0 { cfg.queries } else { default_queries };

    eprintln!("building PCubeDb: {tuples} tuples ({} scale)…", cfg.scale);
    let spec = SyntheticSpec {
        n_tuples: tuples,
        n_bool: 3,
        n_pref: 2,
        cardinality: 8,
        distribution: Distribution::Uniform,
        seed: cfg.seed,
    };
    let mut db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let workload = build_workload(&db, 64, cfg.seed);

    // Admission control: enough slots for the widest measured config (so
    // throughput numbers are not distorted by shedding), with a generous
    // wait. A narrow-gate burst afterwards exercises the shed path.
    let max_threads = cfg.threads.iter().copied().max().unwrap_or(1);
    db.set_admission_gate(AdmissionGate::new(max_threads, Duration::from_secs(30)));

    // Warm pass (fills the pinned signature-directory cache), then a
    // measured serial pass: expected answers + deterministic per-query I/O.
    eprintln!("warming caches and computing reference answers…");
    for q in &workload {
        run_query(&db, q);
    }
    let mut expected = Vec::with_capacity(workload.len());
    let mut per_query_io = Vec::with_capacity(workload.len());
    for q in &workload {
        let before = db.stats().snapshot();
        expected.push(run_query(&db, q).0);
        per_query_io.push(db.stats().snapshot().since(&before));
    }

    // Wall-clock I/O simulation: charge every counted page read a sleep with
    // no lock held, so the wall clock measures how well concurrent clients
    // overlap their stalls — the same question the modeled number answers,
    // but observable end to end. Applied only to the measured configs; the
    // reference pass above and the shed burst below run at RAM speed.
    if cfg.wall_io_us > 0 {
        eprintln!("simulated per-page read latency: {} us", cfg.wall_io_us);
        db.set_wall_read_latency(Some(Duration::from_micros(cfg.wall_io_us)));
    }

    let cost = CostModel::default();
    let mut results: Vec<ConfigResult> = Vec::new();
    for &threads in &cfg.threads {
        eprintln!("running {total_queries} queries on {threads} client thread(s)…");
        results.push(run_config(
            &db,
            &workload,
            &expected,
            &per_query_io,
            &cost,
            threads,
            total_queries,
        ));
    }

    // Shed-pressure burst: narrow the gate to 2 slots with a near-zero wait
    // and hammer it from the widest thread count. Overload must be turned
    // away as typed shed errors — never a hang, never a panic.
    let measured_admitted = db.admission_gate().map_or(0, AdmissionGate::admitted_total);
    db.set_wall_read_latency(None);
    db.set_admission_gate(AdmissionGate::new(2, Duration::from_micros(100)));
    let burst_threads = max_threads.max(4);
    let burst_queries = 256usize;
    eprintln!("shed burst: {burst_queries} queries on {burst_threads} threads, 2 slots…");
    let burst_next = AtomicU64::new(0);
    let burst_shed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..burst_threads {
            let (db, workload, burst_next, burst_shed) =
                (&db, &workload, &burst_next, &burst_shed);
            scope.spawn(move || loop {
                let i = burst_next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= burst_queries {
                    break;
                }
                match db.admit() {
                    Err(_) => {
                        burst_shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(permit) => {
                        run_query(db, &workload[i % workload.len()]);
                        drop(permit);
                    }
                }
            });
        }
    });
    let burst_gate = db.admission_gate().expect("burst gate installed");
    let burst_shed = burst_shed.load(Ordering::Relaxed);
    let burst_admitted = burst_gate.admitted_total();
    eprintln!("shed burst: {burst_admitted} admitted, {burst_shed} shed");

    // Headline: modeled AND wall speedup of the widest configuration over
    // 1 thread. Wall is the hard number — it only scales if no shared lock
    // is held across the simulated page-read stalls.
    let base = results
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.qps_modeled)
        .unwrap_or_else(|| results[0].qps_modeled / results[0].threads as f64);
    let wall_base = results
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.qps_wall)
        .unwrap_or_else(|| results[0].qps_wall / results[0].threads as f64);
    let widest = results
        .iter()
        .max_by_key(|r| r.threads)
        .expect("at least one thread configuration");
    let speedup = widest.qps_modeled / base;
    let wall_speedup = widest.qps_wall / wall_base;

    let mut kinds = std::collections::BTreeMap::new();
    for q in &workload {
        *kinds.entry(q.kind()).or_insert(0usize) += 1;
    }

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_bench\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", cfg.scale);
    let _ = writeln!(json, "  \"tuples\": {tuples},");
    let _ = writeln!(json, "  \"queries_per_config\": {total_queries},");
    let _ = writeln!(json, "  \"distinct_queries\": {},", workload.len());
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(
        json,
        "  \"workload_mix\": {{{}}},",
        kinds
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"wall_io_us\": {},", cfg.wall_io_us);
    json.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"wall_seconds\": {:.4}, \"qps_wall\": {:.1}, \"qps_modeled\": {:.3}, \"wall_speedup_vs_1_thread\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, \"result_mismatches\": {}, \"counter_consistent\": {}, \"degraded_reads\": {}, \"pages_quarantined\": {}, \"pages_repaired\": {}, \"stage_seconds\": {{\"pin\": {:.4}, \"page_read\": {:.4}, \"score\": {:.4}, \"merge\": {:.4}}}}}{}",
            r.threads,
            r.wall_seconds,
            r.qps_wall,
            r.qps_modeled,
            r.qps_wall / wall_base,
            r.p50_us,
            r.p99_us,
            r.mismatches,
            r.counter_consistent,
            r.degraded_reads,
            r.pages_quarantined,
            r.pages_repaired,
            r.stages.pin_seconds,
            r.stages.page_read_seconds,
            r.stages.score_seconds,
            r.stages.merge_seconds,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"admission_measured_queries\": {measured_admitted},");
    let _ = writeln!(
        json,
        "  \"admission_burst\": {{\"queries\": {burst_queries}, \"threads\": {burst_threads}, \"slots\": 2, \"admitted\": {burst_admitted}, \"shed\": {burst_shed}}},"
    );
    let _ = writeln!(json, "  \"widest_threads\": {},", widest.threads);
    let _ = writeln!(json, "  \"modeled_speedup_vs_1_thread\": {speedup:.3},");
    let _ = writeln!(json, "  \"wall_speedup_vs_1_thread\": {wall_speedup:.3},");
    let _ = writeln!(json, "  \"min_speedup_required\": {:.1},", cfg.min_speedup);
    let _ = writeln!(json, "  \"min_wall_speedup_required\": {:.1}", cfg.min_wall_speedup);
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).expect("write results json");

    println!("{json}");
    println!(
        "speedup {speedup:.2}x modeled, {wall_speedup:.2}x wall at {} threads; wall QPS {:.0} -> {:.0}",
        widest.threads,
        results.first().map(|r| r.qps_wall).unwrap_or(0.0),
        widest.qps_wall,
    );

    let mismatched: u64 = results.iter().map(|r| r.mismatches).sum();
    let drifted = results.iter().any(|r| !r.counter_consistent);
    if burst_admitted + burst_shed != burst_queries as u64 {
        eprintln!(
            "FAIL: admission burst lost queries ({burst_admitted} admitted + {burst_shed} shed != {burst_queries})"
        );
        std::process::exit(1);
    }
    if mismatched > 0 {
        eprintln!("FAIL: {mismatched} result mismatches under concurrency");
        std::process::exit(1);
    }
    if drifted {
        eprintln!("FAIL: I/O counter drift under concurrency");
        std::process::exit(1);
    }
    if speedup < cfg.min_speedup {
        eprintln!(
            "FAIL: modeled speedup {speedup:.2}x below required {:.1}x",
            cfg.min_speedup
        );
        std::process::exit(1);
    }
    if wall_speedup < cfg.min_wall_speedup {
        eprintln!(
            "FAIL: wall speedup {wall_speedup:.2}x below required {:.1}x",
            cfg.min_wall_speedup
        );
        std::process::exit(1);
    }
    eprintln!("OK");
}
