//! Planner calibration sweep: estimated vs measured block accesses across
//! boolean selectivities (the Fig 13-style crossover, §VI).
//!
//! Builds one synthetic relation whose first boolean dimension is skewed —
//! value frequencies spanning ~60% down to ~0.1% — then, for each
//! single-value workload (plus the empty selection), runs every engine the
//! planner knows about, records its **measured** block accesses
//! (`stats.io.total_reads()`), and compares them with the planner's
//! estimates. The run fails (non-zero exit) when:
//!
//! * any planner-dispatched answer differs from the in-memory oracle, or
//! * the planner's pick matches the measured-cheapest engine on fewer than
//!   90% of workloads, or
//! * the sweep shows no crossover (the planner must pick a baseline on at
//!   least one high-selectivity workload and P-Cube on at least one
//!   low-selectivity workload).
//!
//! Results land in `BENCH_planner.json` (override with `--out`).

use std::fmt::Write as _;

use pcube_baselines::reference::{bnl_skyline, naive_topk};
use pcube_baselines::{
    BooleanFirstExecutor, BooleanIndexSet, DominationFirstExecutor, IndexMergeExecutor,
};
use pcube_core::{
    EngineKind, Executor, LinearFn, PCubeConfig, PCubeDb, PCubeExecutor, PSkylineClass, Planner,
    PriorityGraph, QueryBudget, QueryClass, QuerySpec, SubspaceSkylineClass,
};
use pcube_cube::{Predicate, Relation, Schema, Selection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Skewed frequency table for boolean dimension 0: the sweep's selectivity
/// axis. (Remainder of the mass goes to value 0.)
const DIM0_FREQS: [(u32, f64); 10] = [
    (0, 0.60),
    (1, 0.20),
    (2, 0.10),
    (3, 0.05),
    (4, 0.03),
    (5, 0.015),
    (6, 0.004),
    (7, 0.001),
    (8, 0.0002),
    (9, 0.00004),
];

struct Config {
    rows: usize,
    k: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config { rows: 50_000, k: 10, seed: 42, out: "BENCH_planner.json".into() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--rows" => cfg.rows = value("--rows").parse().expect("--rows"),
            "--k" => cfg.k = value("--k").parse().expect("--k"),
            "--seed" => cfg.seed = value("--seed").parse().expect("--seed"),
            "--out" => cfg.out = value("--out"),
            other => panic!("unknown flag {other:?} (use --rows --k --seed --out)"),
        }
    }
    cfg
}

fn build_relation(rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut relation = Relation::new(Schema::new(&["a", "b"], &["x", "y"]));
    for _ in 0..rows {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut a = 0u32;
        // Walk the table back-to-front so the rare values get exact slices
        // of the unit interval and value 0 absorbs the remainder.
        for &(v, freq) in DIM0_FREQS.iter().rev() {
            acc += freq;
            if u < acc {
                a = v;
                break;
            }
        }
        let b: u32 = rng.gen_range(0..4);
        let x: f64 = rng.gen();
        let y: f64 = rng.gen();
        relation.push_coded(&[a, b], &[x, y]);
    }
    relation
}

struct EngineRun {
    engine: EngineKind,
    estimated_blocks: f64,
    measured_blocks: u64,
}

struct WorkloadRow {
    label: String,
    selectivity: f64,
    qualifying: usize,
    chosen: EngineKind,
    measured_best: EngineKind,
    hit: bool,
    engines: Vec<EngineRun>,
}

/// Engines every plugged-in query class supports (index-merge is a
/// ranking-only engine and stays out of the generic dispatch set).
const CLASS_ENGINES: [EngineKind; 3] =
    [EngineKind::PCube, EngineKind::BooleanFirst, EngineKind::DominationFirst];

/// One calibration workload for a plugged-in [`QueryClass`]: measure every
/// generic engine, compare against [`Planner::estimate_class`], record the
/// pick, and oracle-check the planner-dispatched answer against the class's
/// naive reference over an independently filtered candidate set.
fn class_workload<C: QueryClass + Sync>(
    db: &PCubeDb,
    planner: &Planner,
    class: &C,
    label: &str,
    sel: &Selection,
    input: &[(u64, Vec<f64>)],
) -> (WorkloadRow, bool)
where
    C::Row: PartialEq,
{
    let estimates = planner.estimate_class(sel, class);
    let mut engines: Vec<EngineRun> = Vec::new();
    for kind in CLASS_ENGINES {
        let (_, stats) = db.run_class_on(class, sel, kind).expect("generic engine");
        let est = estimates
            .iter()
            .find(|e| e.engine == kind)
            .map(|e| e.blocks())
            .unwrap_or(f64::NAN);
        engines.push(EngineRun {
            engine: kind,
            estimated_blocks: est,
            measured_blocks: stats.io.total_reads(),
        });
    }

    let decision = planner.choose_class(sel, class, &CLASS_ENGINES);
    let (got, _) = db
        .plan_and_run_class(planner, class, sel, &QueryBudget::unlimited(), None)
        .expect("planner dispatch");
    let ok = got == class.oracle(input);

    let measured_best = engines
        .iter()
        .min_by_key(|e| e.measured_blocks)
        .expect("at least one engine")
        .engine;
    (
        WorkloadRow {
            label: format!("{label} / {}", class.name()),
            selectivity: decision.selectivity,
            qualifying: input.len(),
            chosen: decision.chosen,
            measured_best,
            hit: decision.chosen == measured_best,
            engines,
        },
        ok,
    )
}

fn main() {
    let cfg = parse_args();
    let relation = build_relation(cfg.rows, cfg.seed);
    let qualifying_rows: Vec<(u64, Vec<f64>)> = (0..relation.len() as u64)
        .map(|tid| (tid, relation.pref_coords(tid)))
        .collect();
    let bool_codes: Vec<Vec<u32>> = (0..relation.schema().n_bool())
        .map(|d| relation.bool_column(d).collect())
        .collect();
    let db = PCubeDb::build(relation, &PCubeConfig::default());
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    let planner = Planner::new(&db);

    let boolean = BooleanFirstExecutor::new(&indexes);
    let merge = IndexMergeExecutor::new(&indexes);
    let executors: Vec<&dyn Executor> =
        vec![&PCubeExecutor, &boolean, &DominationFirstExecutor, &merge];

    let f = LinearFn::new(vec![0.6, 0.4]);
    let oracle_input = |sel: &Selection| -> Vec<(u64, Vec<f64>)> {
        qualifying_rows
            .iter()
            .filter(|(tid, _)| sel.iter().all(|p| bool_codes[p.dim][*tid as usize] == p.value))
            .cloned()
            .collect()
    };

    // The sweep: one workload per dim-0 value (selectivity 60% … 0.1%),
    // plus the unselective empty selection, for both query classes.
    let mut selections: Vec<(String, Selection)> = vec![("none".into(), Vec::new())];
    for &(v, freq) in &DIM0_FREQS {
        selections.push((format!("a={v} (~{freq})"), vec![Predicate { dim: 0, value: v }]));
    }

    let mut rows: Vec<WorkloadRow> = Vec::new();
    let mut mismatches = 0usize;
    for (label, sel) in &selections {
        for class in ["topk", "skyline"] {
            let query = match class {
                "topk" => QuerySpec::TopK { k: cfg.k },
                _ => QuerySpec::Skyline { pref_dims: &[0, 1] },
            };
            let supported: Vec<&dyn Executor> =
                executors.iter().copied().filter(|e| e.supports(&query)).collect();
            let estimates = planner.estimate(sel, &query);

            // Measure every supported engine on a cold ledger delta.
            let mut engines: Vec<EngineRun> = Vec::new();
            for exec in &supported {
                let stats = match query {
                    QuerySpec::TopK { k } => {
                        exec.topk(&db, sel, k, &f).expect("supported engine").1
                    }
                    QuerySpec::Skyline { pref_dims } => {
                        exec.skyline(&db, sel, pref_dims).expect("supported engine").1
                    }
                };
                let est = estimates
                    .iter()
                    .find(|e| e.engine == exec.kind())
                    .map(|e| e.blocks())
                    .unwrap_or(f64::NAN);
                engines.push(EngineRun {
                    engine: exec.kind(),
                    estimated_blocks: est,
                    measured_blocks: stats.io.total_reads(),
                });
            }

            // Planner pick + oracle check on the dispatched answer.
            let kinds: Vec<EngineKind> = supported.iter().map(|e| e.kind()).collect();
            let decision = planner.choose(sel, &query, &kinds);
            let input = oracle_input(sel);
            let ok = match query {
                QuerySpec::TopK { k } => {
                    let (got, _) = db
                        .plan_and_run_topk(&planner, &executors, sel, k, &f)
                        .expect("planner dispatch");
                    let want = naive_topk(&input, k, &f);
                    got.iter().map(|r| r.0).eq(want.iter().map(|r| r.0))
                }
                QuerySpec::Skyline { pref_dims } => {
                    let (got, _) = db
                        .plan_and_run_skyline(&planner, &executors, sel, pref_dims)
                        .expect("planner dispatch");
                    let mut want = bnl_skyline(&input, pref_dims);
                    let key = |c: &[f64]| -> f64 { pref_dims.iter().map(|&d| c[d]).sum() };
                    want.sort_by(|a, b| key(&a.1).total_cmp(&key(&b.1)).then(a.0.cmp(&b.0)));
                    got == want
                }
            };
            if !ok {
                eprintln!("ORACLE MISMATCH: {label} / {class} via {}", decision.chosen.name());
                mismatches += 1;
            }

            let measured_best = engines
                .iter()
                .min_by_key(|e| e.measured_blocks)
                .expect("at least one engine")
                .engine;
            rows.push(WorkloadRow {
                label: format!("{label} / {class}"),
                selectivity: decision.selectivity,
                qualifying: input.len(),
                chosen: decision.chosen,
                measured_best,
                hit: decision.chosen == measured_best,
                engines,
            });
        }
    }

    // Plugged-in query classes ride the same sweep through the generic
    // planner seam (estimate_class / choose_class / plan_and_run_class) —
    // a second pass so the legacy workloads above keep an identical
    // execution order and their measurements stay comparable run-to-run.
    let pskyline = PSkylineClass::new(
        PriorityGraph::new(vec![0, 1], &[(0, 1)]).expect("a single edge is a DAG"),
    );
    let subspace = SubspaceSkylineClass::new(vec![1]);
    for (label, sel) in &selections {
        let input = oracle_input(sel);
        for (row, ok) in [
            class_workload(&db, &planner, &pskyline, label, sel, &input),
            class_workload(&db, &planner, &subspace, label, sel, &input),
        ] {
            if !ok {
                eprintln!("ORACLE MISMATCH: {}", row.label);
                mismatches += 1;
            }
            rows.push(row);
        }
    }

    let hits = rows.iter().filter(|r| r.hit).count();
    let hit_rate = hits as f64 / rows.len() as f64;
    let baseline_on_selective = rows
        .iter()
        .any(|r| r.selectivity < 0.05 && r.chosen != EngineKind::PCube);
    let pcube_on_unselective = rows
        .iter()
        .any(|r| r.selectivity > 0.5 && r.chosen == EngineKind::PCube);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"planner_bench\",");
    let _ = writeln!(json, "  \"rows\": {},", cfg.rows);
    let _ = writeln!(json, "  \"k\": {},", cfg.k);
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let engines: Vec<String> = r
            .engines
            .iter()
            .map(|e| {
                format!(
                    "{{\"engine\": \"{}\", \"estimated_blocks\": {:.1}, \"measured_blocks\": {}}}",
                    e.engine.name(),
                    e.estimated_blocks,
                    e.measured_blocks
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"selectivity\": {:.6}, \"qualifying\": {}, \
             \"chosen\": \"{}\", \"measured_best\": \"{}\", \"hit\": {}, \"engines\": [{}]}}{}",
            r.label,
            r.selectivity,
            r.qualifying,
            r.chosen.name(),
            r.measured_best.name(),
            r.hit,
            engines.join(", "),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"workload_count\": {},", rows.len());
    let _ = writeln!(json, "  \"planner_hits\": {hits},");
    let _ = writeln!(json, "  \"planner_hit_rate\": {hit_rate:.3},");
    let _ = writeln!(json, "  \"baseline_chosen_on_selective\": {baseline_on_selective},");
    let _ = writeln!(json, "  \"pcube_chosen_on_unselective\": {pcube_on_unselective},");
    let _ = writeln!(json, "  \"oracle_mismatches\": {mismatches}");
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).expect("write results json");
    println!("{json}");

    for r in &rows {
        println!(
            "{:<28} σ={:<9.5} chosen={:<16} best={:<16} {}",
            r.label,
            r.selectivity,
            r.chosen.name(),
            r.measured_best.name(),
            if r.hit { "hit" } else { "MISS" },
        );
    }
    println!("hit rate: {hits}/{} = {hit_rate:.3}", rows.len());

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} planner/oracle mismatches");
        std::process::exit(1);
    }
    if hit_rate < 0.9 {
        eprintln!("FAIL: planner hit rate {hit_rate:.3} below 0.9");
        std::process::exit(1);
    }
    if !baseline_on_selective || !pcube_on_unselective {
        eprintln!(
            "FAIL: no crossover (baseline on selective: {baseline_on_selective}, \
             pcube on unselective: {pcube_on_unselective})"
        );
        std::process::exit(1);
    }
}
