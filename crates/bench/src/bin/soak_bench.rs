//! Chaos soak benchmark: a mixed preference-query workload hammered by many
//! client threads against one shared [`PCubeDb`] while the signature pagers
//! inject seeded read faults, every query runs under a randomized
//! [`QueryBudget`], and an admission gate narrower than the thread count
//! sheds overload on a short wait.
//!
//! Unlike `serve_bench` (which measures clean-path throughput), this binary
//! measures the *lifecycle* numbers the robustness layer owes operators:
//!
//! * **shed rate** — queries turned away by admission control,
//! * **partial-result rate** — queries stopped early by their budget,
//!   broken down by stop reason,
//! * **p50/p99 latency under faults** — over the admitted queries.
//!
//! It is also a correctness gate: any `Complete` answer differing from the
//! clean serial oracle, any deadline overshoot beyond one kernel pop, or
//! any progress-counter inconsistency exits non-zero.
//!
//! Usage: `soak_bench [--queries N] [--threads T] [--tuples N] [--seed S]
//! [--slots K] [--max-wait-us U] [--out PATH]`
//!
//! Results land in `BENCH_soak.json` (override with `--out`).

use pcube_core::{
    convex_hull_query, convex_hull_query_governed, dynamic_skyline_query,
    dynamic_skyline_query_governed, skyline_query, skyline_query_governed, topk_query,
    topk_query_governed, AdmissionGate, CancelToken, LinearFn, PCubeConfig, PCubeDb,
    QueryBudget, QueryOutcome, QueryStats, StopReason,
};
use pcube_cube::Selection;
use pcube_data::{sample_selection, synthetic, Distribution, SyntheticSpec};
use pcube_storage::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[derive(Clone)]
enum Query {
    TopK { sel: Selection, k: usize, weights: Vec<f64> },
    Skyline { sel: Selection },
    Dynamic { sel: Selection, q: Vec<f64> },
    Hull { sel: Selection },
}

#[derive(Clone, PartialEq)]
enum Answer {
    TopK(Vec<(u64, Vec<f64>, f64)>),
    Skyline(Vec<(u64, Vec<f64>)>),
    Hull(Vec<(u64, [f64; 2])>),
}

struct Config {
    queries: usize,
    threads: usize,
    tuples: usize,
    seed: u64,
    slots: usize,
    max_wait: Duration,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        queries: 5_000,
        threads: 8,
        tuples: 20_000,
        seed: 42,
        slots: 4,
        max_wait: Duration::from_micros(500),
        out: "BENCH_soak.json".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |n: usize| {
            args.get(n).unwrap_or_else(|| {
                eprintln!("{} needs a value", args[n - 1]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--queries" => cfg.queries = need(i + 1).parse().expect("--queries takes a count"),
            "--threads" => cfg.threads = need(i + 1).parse().expect("--threads takes a count"),
            "--tuples" => cfg.tuples = need(i + 1).parse().expect("--tuples takes a count"),
            "--seed" => cfg.seed = need(i + 1).parse().expect("--seed takes a number"),
            "--slots" => cfg.slots = need(i + 1).parse().expect("--slots takes a count"),
            "--max-wait-us" => {
                cfg.max_wait =
                    Duration::from_micros(need(i + 1).parse().expect("--max-wait-us takes µs"))
            }
            "--out" => cfg.out = need(i + 1).clone(),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    cfg
}

fn build_workload(db: &PCubeDb, n: usize, seed: u64) -> Vec<(Query, Answer)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let sel = sample_selection(db.relation(), i % 3, &mut rng);
            let query = match i % 4 {
                0 => Query::TopK {
                    sel,
                    k: 5 + i % 16,
                    weights: vec![0.2 + 0.1 * (i % 7) as f64, 0.9 - 0.1 * (i % 5) as f64],
                },
                1 => Query::Skyline { sel },
                2 => Query::Dynamic {
                    sel,
                    q: vec![0.1 * (i % 10) as f64, 1.0 - 0.1 * (i % 10) as f64],
                },
                _ => Query::Hull { sel },
            };
            let oracle = match &query {
                Query::TopK { sel, k, weights } => Answer::TopK(
                    topk_query(db, sel, *k, &LinearFn::new(weights.clone()), false).topk,
                ),
                Query::Skyline { sel } => {
                    Answer::Skyline(skyline_query(db, sel, &[0, 1], false).skyline)
                }
                Query::Dynamic { sel, q } => {
                    Answer::Skyline(dynamic_skyline_query(db, sel, q, &[0, 1]).skyline)
                }
                Query::Hull { sel } => Answer::Hull(convex_hull_query(db, sel, (0, 1)).hull),
            };
            (query, oracle)
        })
        .collect()
}

/// A randomized budget for query `i`: most queries run free, the rest get a
/// short deadline, a small block budget, a small heap cap, or a
/// pre-cancelled token.
fn budget_for(i: usize, rng: &mut StdRng) -> (QueryBudget, Option<CancelToken>) {
    let b = QueryBudget::unlimited();
    match i % 8 {
        0..=3 => (b, None),
        4 => (b.with_deadline(Duration::from_micros(rng.gen_range(20..2_000))), None),
        5 => (b.with_block_budget(rng.gen_range(1..=40)), None),
        6 => (b.with_heap_cap(rng.gen_range(4..=64)), None),
        _ => {
            let token = CancelToken::new();
            token.cancel();
            (b, Some(token))
        }
    }
}

#[derive(Default)]
struct Tally {
    complete: AtomicU64,
    deadline: AtomicU64,
    blocks: AtomicU64,
    heap: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    mismatches: AtomicU64,
    violations: AtomicU64,
}

impl Tally {
    fn record(&self, outcome: &QueryOutcome) {
        let counter = match outcome.partial_reason() {
            None => &self.complete,
            Some(StopReason::DeadlineExceeded) => &self.deadline,
            Some(StopReason::BlockBudgetExceeded) => &self.blocks,
            Some(StopReason::HeapCapExceeded) => &self.heap,
            Some(StopReason::Cancelled) => &self.cancelled,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Checks the lifecycle invariants on one finished query; counts violations
/// instead of panicking so the bench reports totals before failing.
fn audit(stats: &QueryStats, rows: usize, exact_rows: bool, tally: &Tally) {
    if let QueryOutcome::Partial { reason, progress } = &stats.outcome {
        let rows_ok = if exact_rows {
            progress.results_so_far == rows
        } else {
            progress.results_so_far >= rows
        };
        let overshoot_ok = if *reason == StopReason::DeadlineExceeded {
            progress.overshoot_seconds <= progress.max_pop_seconds + 1e-6
        } else {
            progress.overshoot_seconds == 0.0
        };
        if !rows_ok || !overshoot_ok {
            tally.violations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_one(db: &PCubeDb, i: usize, case: &(Query, Answer), tally: &Tally) {
    let mut rng = StdRng::seed_from_u64(0xBE4C ^ i as u64);
    let (budget, cancel) = budget_for(i, &mut rng);
    let mut mismatch = false;
    match &case.0 {
        Query::TopK { sel, k, weights } => {
            let f = LinearFn::new(weights.clone());
            let out = topk_query_governed(db, sel, *k, &f, false, &budget, cancel.as_ref());
            audit(&out.stats, out.topk.len(), true, tally);
            if out.stats.outcome.is_complete() {
                mismatch = Answer::TopK(out.topk) != case.1;
            }
            tally.record(&out.stats.outcome);
        }
        Query::Skyline { sel } => {
            let out = skyline_query_governed(db, sel, &[0, 1], false, &budget, cancel.as_ref());
            audit(&out.stats, out.skyline.len(), true, tally);
            if out.stats.outcome.is_complete() {
                mismatch = Answer::Skyline(out.skyline) != case.1;
            }
            tally.record(&out.stats.outcome);
        }
        Query::Dynamic { sel, q } => {
            let out = dynamic_skyline_query_governed(db, sel, q, &[0, 1], &budget, cancel.as_ref());
            audit(&out.stats, out.skyline.len(), true, tally);
            if out.stats.outcome.is_complete() {
                mismatch = Answer::Skyline(out.skyline) != case.1;
            }
            tally.record(&out.stats.outcome);
        }
        Query::Hull { sel } => {
            let out = convex_hull_query_governed(db, sel, (0, 1), &budget, cancel.as_ref());
            audit(&out.stats, out.hull.len(), false, tally);
            if out.stats.outcome.is_complete() {
                mismatch = Answer::Hull(out.hull) != case.1;
            }
            tally.record(&out.stats.outcome);
        }
    }
    if mismatch {
        tally.mismatches.fetch_add(1, Ordering::Relaxed);
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn main() {
    let cfg = parse_args();
    eprintln!("building PCubeDb: {} tuples…", cfg.tuples);
    let spec = SyntheticSpec {
        n_tuples: cfg.tuples,
        n_bool: 3,
        n_pref: 2,
        cardinality: 8,
        distribution: Distribution::Uniform,
        seed: cfg.seed,
    };
    let mut db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());

    eprintln!("computing clean oracles for 64 distinct queries…");
    let workload = build_workload(&db, 64, cfg.seed);

    // Chaos on: seeded faults on both signature pagers, and an admission
    // gate with fewer slots than client threads and a short wait, so real
    // overload is shed rather than queued.
    db.signature_store_mut()
        .sig_pager_mut()
        .set_fault_plan(FaultPlan::seeded(cfg.seed ^ 0xC4A0).with_read_errors(0.3));
    db.signature_store_mut()
        .dir_pager_mut()
        .set_fault_plan(FaultPlan::seeded(cfg.seed ^ 0x0D1E).with_read_errors(0.2));
    db.set_admission_gate(AdmissionGate::new(cfg.slots, cfg.max_wait));

    eprintln!(
        "soaking: {} queries, {} threads, {} admission slots (wait {:?})…",
        cfg.queries, cfg.threads, cfg.slots, cfg.max_wait
    );
    let tally = Tally::default();
    let next = AtomicU64::new(0);
    let started = Instant::now();
    let per_thread: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|_| {
                let (db, workload, tally, next, cfg) = (&db, &workload, &tally, &next, &cfg);
                scope.spawn(move || {
                    let mut lat_us: Vec<u64> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= cfg.queries {
                            break;
                        }
                        let q_started = Instant::now();
                        match db.admit() {
                            Err(_) => {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(permit) => {
                                run_one(db, i, &workload[i % workload.len()], tally);
                                drop(permit);
                                lat_us.push(q_started.elapsed().as_micros() as u64);
                            }
                        }
                    }
                    lat_us
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("soak thread panicked")).collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut lat: Vec<u64> = per_thread.into_iter().flatten().collect();
    lat.sort_unstable();
    let shed = tally.shed.load(Ordering::Relaxed);
    let complete = tally.complete.load(Ordering::Relaxed);
    let deadline = tally.deadline.load(Ordering::Relaxed);
    let blocks = tally.blocks.load(Ordering::Relaxed);
    let heap = tally.heap.load(Ordering::Relaxed);
    let cancelled = tally.cancelled.load(Ordering::Relaxed);
    let mismatches = tally.mismatches.load(Ordering::Relaxed);
    let violations = tally.violations.load(Ordering::Relaxed);
    let executed = lat.len() as u64;
    let partials = deadline + blocks + heap + cancelled;
    let gate = db.admission_gate().expect("gate installed");

    // Hand-rolled JSON (the workspace deliberately has no serde).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"soak_bench\",");
    let _ = writeln!(json, "  \"tuples\": {},", cfg.tuples);
    let _ = writeln!(json, "  \"queries\": {},", cfg.queries);
    let _ = writeln!(json, "  \"threads\": {},", cfg.threads);
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(json, "  \"admission_slots\": {},", cfg.slots);
    let _ = writeln!(json, "  \"admission_max_wait_us\": {},", cfg.max_wait.as_micros());
    let _ = writeln!(json, "  \"wall_seconds\": {wall_seconds:.4},");
    let _ = writeln!(json, "  \"executed\": {executed},");
    let _ = writeln!(json, "  \"shed\": {shed},");
    let _ = writeln!(json, "  \"shed_rate\": {:.4},", shed as f64 / cfg.queries as f64);
    let _ = writeln!(json, "  \"admitted_total\": {},", gate.admitted_total());
    let _ = writeln!(json, "  \"complete\": {complete},");
    let _ = writeln!(
        json,
        "  \"partials\": {{\"deadline\": {deadline}, \"blocks\": {blocks}, \"heap\": {heap}, \"cancelled\": {cancelled}}},"
    );
    let _ = writeln!(
        json,
        "  \"partial_rate\": {:.4},",
        partials as f64 / executed.max(1) as f64
    );
    let _ = writeln!(json, "  \"p50_us\": {},", percentile(&lat, 0.50));
    let _ = writeln!(json, "  \"p99_us\": {},", percentile(&lat, 0.99));
    let _ = writeln!(json, "  \"degraded_reads\": {},", db.stats().degraded_reads());
    let _ = writeln!(json, "  \"result_mismatches\": {mismatches},");
    let _ = writeln!(json, "  \"invariant_violations\": {violations}");
    json.push_str("}\n");
    std::fs::write(&cfg.out, &json).expect("write results json");
    println!("{json}");

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} complete results differed from the clean oracle");
        std::process::exit(1);
    }
    if violations > 0 {
        eprintln!("FAIL: {violations} progress/overshoot invariant violations");
        std::process::exit(1);
    }
    if executed + shed != cfg.queries as u64 {
        eprintln!("FAIL: executed {executed} + shed {shed} != issued {}", cfg.queries);
        std::process::exit(1);
    }
    if complete + partials != executed {
        eprintln!("FAIL: outcome tallies drifted from the executed count");
        std::process::exit(1);
    }
    eprintln!(
        "OK: {executed} executed ({partials} partial), {shed} shed, p99 {}µs",
        percentile(&lat, 0.99)
    );
}
