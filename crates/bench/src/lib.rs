//! Shared harness for reproducing the paper's evaluation (§VI).
//!
//! Each figure has a runner in the `report` binary; this library provides
//! the common pieces: scaled workload construction, per-method measurement,
//! and table printing. Absolute numbers differ from the paper's 2008 testbed
//! (see DESIGN.md §3 — I/O is simulated and charged through a
//! [`CostModel`]); the reproduction target is the *shape* of each figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pcube_baselines::{bbs_skyline, index_merge_topk, ranking_topk, BooleanIndexSet, SelectRoute};
use pcube_core::{skyline_query, topk_query, PCubeConfig, PCubeDb, QueryStats, RankingFunction};
use pcube_cube::Selection;
use pcube_data::{synthetic, Distribution, SyntheticSpec};
use pcube_storage::{CostModel, IoCategory, IoSnapshot};

/// How large the experiments run. The paper sweeps 1M–10M tuples; `small`
/// keeps the full suite in CI time, `full` is paper scale.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Scale name (`small`, `medium`, `full`).
    pub name: &'static str,
    /// Tuple counts for the T-sweeps (Figs 5, 6, 8, 9, 10).
    pub t_sweep: Vec<usize>,
    /// Tuple count for fixed-T experiments (Figs 7, 11, 12, 13).
    pub t_default: usize,
    /// Rows for the CoverType surrogate (Figs 14–16).
    pub covertype_rows: usize,
    /// Queries averaged per data point.
    pub queries: usize,
}

impl Scale {
    /// Looks up a scale by name, or `None` for an unknown one.
    pub fn try_named(name: &str) -> Option<Scale> {
        match name {
            "small" | "medium" | "full" => Some(Self::named(name)),
            _ => None,
        }
    }

    /// Looks up a scale by name.
    ///
    /// # Panics
    /// Panics on an unknown name.
    pub fn named(name: &str) -> Scale {
        match name {
            "small" => Scale {
                name: "small",
                t_sweep: vec![20_000, 50_000, 100_000],
                t_default: 100_000,
                covertype_rows: 60_000,
                queries: 5,
            },
            "medium" => Scale {
                name: "medium",
                t_sweep: vec![100_000, 500_000, 1_000_000],
                t_default: 1_000_000,
                covertype_rows: pcube_data::COVERTYPE_ROWS,
                queries: 5,
            },
            "full" => Scale {
                name: "full",
                t_sweep: vec![1_000_000, 5_000_000, 10_000_000],
                t_default: 1_000_000,
                covertype_rows: pcube_data::COVERTYPE_ROWS,
                queries: 3,
            },
            other => panic!("unknown scale {other:?} (use small|medium|full)"),
        }
    }
}

/// The paper's default synthetic spec (§VI-B.1) at a given `T`.
pub fn default_spec(t: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        n_tuples: t,
        n_bool: 3,
        n_pref: 3,
        cardinality: 100,
        distribution: Distribution::Uniform,
        seed,
    }
}

/// A built database plus the baselines' boolean indexes.
pub struct Bench {
    /// The P-Cube database (relation + R-tree + signatures).
    pub db: PCubeDb,
    /// One B+-tree per boolean dimension (Boolean & Index-merge baselines).
    pub indexes: BooleanIndexSet,
}

/// Builds the database and baseline indexes for a synthetic spec.
pub fn build(spec: &SyntheticSpec) -> Bench {
    let db = PCubeDb::build(synthetic(spec), &PCubeConfig::default());
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    Bench { db, indexes }
}

/// Builds the database and indexes over an arbitrary relation.
pub fn build_from(relation: pcube_cube::Relation) -> Bench {
    let db = PCubeDb::build(relation, &PCubeConfig::default());
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    Bench { db, indexes }
}

/// One method's measurement for one query, in modeled seconds plus the raw
/// counters behind it.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// CPU seconds + modeled I/O seconds.
    pub seconds: f64,
    /// CPU-only seconds.
    pub cpu_seconds: f64,
    /// The I/O the query performed.
    pub io: IoSnapshot,
    /// Peak candidate-heap (or candidate-set) size.
    pub peak_heap: usize,
    /// Result cardinality.
    pub results: usize,
}

impl Measurement {
    /// Folds a [`QueryStats`] into a measurement under `cost`.
    pub fn from_stats(stats: &QueryStats, results: usize, cost: &CostModel) -> Measurement {
        Measurement {
            seconds: stats.cpu_seconds + cost.seconds(&stats.io),
            cpu_seconds: stats.cpu_seconds,
            io: stats.io,
            peak_heap: stats.peak_heap,
            results,
        }
    }

    /// Averages a set of measurements (io keeps the last sample's counters
    /// for breakdown display; seconds and peaks are means).
    pub fn mean(samples: &[Measurement]) -> Measurement {
        assert!(!samples.is_empty());
        let n = samples.len() as f64;
        Measurement {
            seconds: samples.iter().map(|m| m.seconds).sum::<f64>() / n,
            cpu_seconds: samples.iter().map(|m| m.cpu_seconds).sum::<f64>() / n,
            io: samples.last().unwrap().io,
            peak_heap: (samples.iter().map(|m| m.peak_heap).sum::<usize>() as f64 / n) as usize,
            results: (samples.iter().map(|m| m.results).sum::<usize>() as f64 / n) as usize,
        }
    }
}

/// Runs the Signature skyline and measures it.
pub fn measure_signature_skyline(
    bench: &Bench,
    sel: &Selection,
    pref_dims: &[usize],
    cost: &CostModel,
) -> Measurement {
    bench.db.stats().reset();
    let out = skyline_query(&bench.db, sel, pref_dims, false);
    Measurement::from_stats(&out.stats, out.skyline.len(), cost)
}

/// Runs the Boolean-first skyline (auto route) and measures it.
pub fn measure_boolean_skyline(
    bench: &Bench,
    sel: &Selection,
    pref_dims: &[usize],
    cost: &CostModel,
) -> Measurement {
    measure_boolean_skyline_via(bench, sel, pref_dims, cost, SelectRoute::Auto)
}

/// Runs the Boolean-first skyline with an explicit retrieval route.
pub fn measure_boolean_skyline_via(
    bench: &Bench,
    sel: &Selection,
    pref_dims: &[usize],
    cost: &CostModel,
    route: SelectRoute,
) -> Measurement {
    bench.db.stats().reset();
    let out = bench.indexes.skyline_via(&bench.db, sel, pref_dims, route);
    Measurement::from_stats(&out.stats, out.skyline.len(), cost)
}

/// Runs the Domination-first (BBS + minimal probing) skyline.
pub fn measure_domination_skyline(
    bench: &Bench,
    sel: &Selection,
    pref_dims: &[usize],
    cost: &CostModel,
) -> Measurement {
    bench.db.stats().reset();
    let (sky, stats) = bbs_skyline(&bench.db, sel, pref_dims);
    Measurement::from_stats(&stats, sky.len(), cost)
}

/// Runs the Signature top-k.
pub fn measure_signature_topk(
    bench: &Bench,
    sel: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    cost: &CostModel,
) -> Measurement {
    bench.db.stats().reset();
    let out = topk_query(&bench.db, sel, k, f, false);
    Measurement::from_stats(&out.stats, out.topk.len(), cost)
}

/// Runs the Boolean-first top-k (auto route).
pub fn measure_boolean_topk(
    bench: &Bench,
    sel: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    cost: &CostModel,
) -> Measurement {
    bench.db.stats().reset();
    let out = bench.indexes.topk(&bench.db, sel, k, f);
    Measurement::from_stats(&out.stats, out.topk.len(), cost)
}

/// Runs the Boolean-first top-k with an explicit retrieval route.
pub fn measure_boolean_topk_via(
    bench: &Bench,
    sel: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    cost: &CostModel,
    route: SelectRoute,
) -> Measurement {
    bench.db.stats().reset();
    let out = bench.indexes.topk_via(&bench.db, sel, k, f, route);
    Measurement::from_stats(&out.stats, out.topk.len(), cost)
}

/// Runs the Ranking (best-first + minimal probing) top-k.
pub fn measure_ranking_topk(
    bench: &Bench,
    sel: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    cost: &CostModel,
) -> Measurement {
    bench.db.stats().reset();
    let (top, stats) = ranking_topk(&bench.db, sel, k, f);
    Measurement::from_stats(&stats, top.len(), cost)
}

/// Runs the Index-merge top-k.
pub fn measure_index_merge_topk(
    bench: &Bench,
    sel: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    cost: &CostModel,
) -> Measurement {
    bench.db.stats().reset();
    let (top, stats) = index_merge_topk(&bench.db, &bench.indexes, sel, k, f);
    Measurement::from_stats(&stats, top.len(), cost)
}

/// Prints a table header like `T        Boolean  Domination  Signature`.
pub fn print_header(x_label: &str, methods: &[&str]) {
    print!("{x_label:<14}");
    for m in methods {
        print!("{m:>14}");
    }
    println!();
    println!("{}", "-".repeat(14 + 14 * methods.len()));
}

/// Prints one row of seconds.
pub fn print_row_seconds(x: &str, values: &[f64]) {
    print!("{x:<14}");
    for v in values {
        print!("{v:>14.4}");
    }
    println!();
}

/// Prints one row of counts.
pub fn print_row_counts(x: &str, values: &[u64]) {
    print!("{x:<14}");
    for v in values {
        print!("{v:>14}");
    }
    println!();
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KB", b as f64 / 1024.0)
    }
}

/// Convenience: modeled I/O seconds for a subset of categories.
pub fn modeled_io(io: &IoSnapshot, cost: &CostModel, categories: &[IoCategory]) -> f64 {
    categories
        .iter()
        .map(|&c| {
            let per = match c {
                IoCategory::HeapScan => cost.sequential_page_seconds,
                _ => cost.random_page_seconds,
            };
            (io.reads(c) + io.writes(c)) as f64 * per
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_data::sample_selection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scales_resolve() {
        for name in ["small", "medium", "full"] {
            let s = Scale::named(name);
            assert_eq!(s.name, name);
            assert_eq!(s.t_sweep.len(), 3);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_scale_panics() {
        let _ = Scale::named("galactic");
    }

    #[test]
    fn measurements_cover_all_methods() {
        let bench = build(&default_spec(2_000, 1));
        let mut rng = StdRng::seed_from_u64(2);
        let sel = sample_selection(bench.db.relation(), 1, &mut rng);
        let cost = CostModel::default();
        let sig = measure_signature_skyline(&bench, &sel, &[0, 1, 2], &cost);
        let boolean = measure_boolean_skyline(&bench, &sel, &[0, 1, 2], &cost);
        let dom = measure_domination_skyline(&bench, &sel, &[0, 1, 2], &cost);
        assert_eq!(sig.results, boolean.results);
        assert_eq!(sig.results, dom.results);
        assert!(sig.seconds > 0.0 && boolean.seconds > 0.0 && dom.seconds > 0.0);

        let f = pcube_core::LinearFn::new(vec![0.5, 0.3, 0.2]);
        let a = measure_signature_topk(&bench, &sel, 5, &f, &cost);
        let b = measure_boolean_topk(&bench, &sel, 5, &f, &cost);
        let c = measure_ranking_topk(&bench, &sel, 5, &f, &cost);
        let d = measure_index_merge_topk(&bench, &sel, 5, &f, &cost);
        assert_eq!(a.results, b.results);
        assert_eq!(a.results, c.results);
        assert_eq!(a.results, d.results);
    }

    #[test]
    fn mean_averages_seconds() {
        let a = Measurement { seconds: 1.0, ..Default::default() };
        let b = Measurement { seconds: 3.0, ..Default::default() };
        assert_eq!(Measurement::mean(&[a, b]).seconds, 2.0);
    }

    #[test]
    fn fmt_bytes_units() {
        assert!(fmt_bytes(512).ends_with("KB"));
        assert!(fmt_bytes(5 << 20).ends_with("MB"));
        assert!(fmt_bytes(3 << 30).ends_with("GB"));
    }
}
