//! Cuboids, cells and the materialization plan.

use std::collections::HashMap;

use crate::predicate::{Predicate, Selection};
use crate::relation::Relation;

/// A cuboid — a subset of the boolean dimensions — as a bitmask.
///
/// Supports up to 32 boolean dimensions, far beyond the paper's experiments
/// (3–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CuboidMask(pub u32);

impl CuboidMask {
    /// The apex cuboid (no dimensions; its single cell is the whole table).
    pub const APEX: CuboidMask = CuboidMask(0);

    /// Builds a mask from dimension indexes.
    ///
    /// # Panics
    /// Panics if a dimension index is ≥ 32.
    pub fn from_dims(dims: &[usize]) -> Self {
        let mut m = 0u32;
        for &d in dims {
            assert!(d < 32, "at most 32 boolean dimensions supported");
            m |= 1 << d;
        }
        CuboidMask(m)
    }

    /// The single-dimension (atomic) cuboid of `dim`.
    pub fn atomic(dim: usize) -> Self {
        Self::from_dims(&[dim])
    }

    /// Dimension indexes in ascending order.
    pub fn dims(self) -> Vec<usize> {
        (0..32).filter(|d| self.0 >> d & 1 == 1).collect()
    }

    /// Number of dimensions in the cuboid (its level in the lattice).
    pub fn level(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` for one-dimensional cuboids.
    pub fn is_atomic(self) -> bool {
        self.level() == 1
    }

    /// `true` if the cuboid includes `dim`.
    pub fn contains_dim(self, dim: usize) -> bool {
        dim < 32 && self.0 >> dim & 1 == 1
    }
}

/// Identifies one cell: a cuboid and the value code for each of its
/// dimensions, aligned with [`CuboidMask::dims`] order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// The cuboid the cell belongs to.
    pub mask: CuboidMask,
    /// Value codes, one per dimension of the mask, in ascending-dim order.
    pub values: Vec<u32>,
}

impl CellKey {
    /// The atomic cell `A_dim = value`.
    pub fn atomic(dim: usize, value: u32) -> Self {
        CellKey { mask: CuboidMask::atomic(dim), values: vec![value] }
    }

    /// The cell a conjunctive selection addresses (dimensions sorted,
    /// duplicates assumed already normalized).
    pub fn from_selection(selection: &Selection) -> Self {
        let mut preds: Vec<Predicate> = selection.clone();
        preds.sort_by_key(|p| p.dim);
        CellKey {
            mask: CuboidMask::from_dims(&preds.iter().map(|p| p.dim).collect::<Vec<_>>()),
            values: preds.iter().map(|p| p.value).collect(),
        }
    }

    /// The selection equivalent to this cell.
    pub fn to_selection(&self) -> Selection {
        self.mask
            .dims()
            .into_iter()
            .zip(&self.values)
            .map(|(dim, &value)| Predicate { dim, value })
            .collect()
    }
}

/// Assigns dense `u32` codes to cells so they can key B+-tree composites.
#[derive(Debug, Default, Clone)]
pub struct CellRegistry {
    codes: HashMap<CellKey, u32>,
    keys: Vec<CellKey>,
}

impl CellRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CellRegistry::default()
    }

    /// The code for `key`, allocating the next one on first use.
    pub fn intern(&mut self, key: CellKey) -> u32 {
        if let Some(&c) = self.codes.get(&key) {
            return c;
        }
        let code = u32::try_from(self.keys.len()).expect("cell registry full");
        self.codes.insert(key.clone(), code);
        self.keys.push(key);
        code
    }

    /// The code for `key`, if registered.
    pub fn code(&self, key: &CellKey) -> Option<u32> {
        self.codes.get(key).copied()
    }

    /// The key registered under `code`.
    pub fn key(&self, code: u32) -> Option<&CellKey> {
        self.keys.get(code as usize)
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if no cell is registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Which cuboids a P-Cube materializes signatures for.
///
/// "Due to the curse of dimensionality, we may only compute a subset of low
/// dimensional cuboids … we assume that the P-Cube always contains a set of
/// atomic cuboids" (§IV-B.2). [`MaterializationPlan::Atomic`] is the paper's
/// default; higher-order cells are assembled by signature intersection at
/// query time.
#[derive(Debug, Clone)]
pub enum MaterializationPlan {
    /// All one-dimensional cuboids (the paper's experimental setting).
    Atomic,
    /// Every cuboid with at most this many dimensions.
    UpToLevel(usize),
    /// An explicit cuboid list (atomic cuboids are implicitly added, as the
    /// paper requires them for online assembly).
    Explicit(Vec<CuboidMask>),
}

impl MaterializationPlan {
    /// The concrete cuboids to materialize for `n_bool` boolean dimensions,
    /// always including all atomic cuboids, sorted by level then mask.
    pub fn cuboids(&self, n_bool: usize) -> Vec<CuboidMask> {
        assert!(n_bool <= 32, "at most 32 boolean dimensions supported");
        let mut out: Vec<CuboidMask> = match self {
            MaterializationPlan::Atomic => {
                (0..n_bool).map(CuboidMask::atomic).collect()
            }
            MaterializationPlan::UpToLevel(k) => {
                let all = 1u64 << n_bool;
                (1..all)
                    .map(|m| CuboidMask(m as u32))
                    .filter(|m| m.level() <= *k && m.level() >= 1)
                    .collect()
            }
            MaterializationPlan::Explicit(masks) => {
                let mut v: Vec<CuboidMask> = (0..n_bool).map(CuboidMask::atomic).collect();
                v.extend(masks.iter().copied());
                v
            }
        };
        out.sort_by_key(|m| (m.level(), m.0));
        out.dedup();
        assert!(
            (0..n_bool).all(|d| out.contains(&CuboidMask::atomic(d))),
            "plan must include every atomic cuboid"
        );
        out
    }
}

/// Groups the relation's rows by their values on the cuboid's dimensions.
/// Returns `(cell, tids)` pairs; tids are ascending within each cell.
pub fn group_by(relation: &Relation, mask: CuboidMask) -> Vec<(CellKey, Vec<u64>)> {
    let dims = mask.dims();
    let mut groups: HashMap<Vec<u32>, Vec<u64>> = HashMap::new();
    for tid in 0..relation.len() as u64 {
        let values: Vec<u32> = dims.iter().map(|&d| relation.bool_code(tid, d)).collect();
        groups.entry(values).or_default().push(tid);
    }
    let mut out: Vec<(CellKey, Vec<u64>)> = groups
        .into_iter()
        .map(|(values, tids)| (CellKey { mask, values }, tids))
        .collect();
    out.sort_by(|a, b| a.0.values.cmp(&b.0.values));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> Relation {
        let mut r = Relation::new(Schema::new(&["A", "B"], &["X"]));
        for (a, b) in [
            ("a1", "b1"),
            ("a2", "b2"),
            ("a1", "b1"),
            ("a3", "b3"),
            ("a4", "b1"),
            ("a2", "b3"),
            ("a4", "b2"),
            ("a3", "b3"),
        ] {
            r.push(&[a, b], &[0.0]);
        }
        r
    }

    #[test]
    fn mask_basics() {
        let m = CuboidMask::from_dims(&[0, 2]);
        assert_eq!(m.dims(), vec![0, 2]);
        assert_eq!(m.level(), 2);
        assert!(!m.is_atomic());
        assert!(m.contains_dim(2) && !m.contains_dim(1));
        assert!(CuboidMask::atomic(1).is_atomic());
        assert_eq!(CuboidMask::APEX.level(), 0);
    }

    #[test]
    fn cell_key_from_selection_sorts_dims() {
        let sel = vec![Predicate { dim: 2, value: 9 }, Predicate { dim: 0, value: 4 }];
        let key = CellKey::from_selection(&sel);
        assert_eq!(key.mask, CuboidMask::from_dims(&[0, 2]));
        assert_eq!(key.values, vec![4, 9]);
        let back = key.to_selection();
        assert_eq!(back, vec![Predicate { dim: 0, value: 4 }, Predicate { dim: 2, value: 9 }]);
    }

    #[test]
    fn registry_assigns_dense_codes() {
        let mut reg = CellRegistry::new();
        let k1 = CellKey::atomic(0, 0);
        let k2 = CellKey::atomic(0, 1);
        assert_eq!(reg.intern(k1.clone()), 0);
        assert_eq!(reg.intern(k2.clone()), 1);
        assert_eq!(reg.intern(k1.clone()), 0);
        assert_eq!(reg.code(&k2), Some(1));
        assert_eq!(reg.key(0), Some(&k1));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn atomic_plan_lists_single_dims() {
        let cuboids = MaterializationPlan::Atomic.cuboids(3);
        assert_eq!(
            cuboids,
            vec![CuboidMask(0b001), CuboidMask(0b010), CuboidMask(0b100)]
        );
    }

    #[test]
    fn up_to_level_plan_counts() {
        let cuboids = MaterializationPlan::UpToLevel(2).cuboids(4);
        // C(4,1) + C(4,2) = 4 + 6
        assert_eq!(cuboids.len(), 10);
        assert!(cuboids.iter().all(|m| m.level() <= 2));
        // Sorted by level.
        assert!(cuboids[..4].iter().all(|m| m.is_atomic()));
    }

    #[test]
    fn explicit_plan_always_includes_atomics() {
        let plan = MaterializationPlan::Explicit(vec![CuboidMask::from_dims(&[0, 1])]);
        let cuboids = plan.cuboids(2);
        assert_eq!(
            cuboids,
            vec![CuboidMask(0b01), CuboidMask(0b10), CuboidMask(0b11)]
        );
    }

    #[test]
    fn group_by_atomic_matches_paper_cells() {
        let r = sample();
        let groups = group_by(&r, CuboidMask::atomic(0));
        // a1..a4 have codes 0..3 in intern order; each appears twice.
        assert_eq!(groups.len(), 4);
        for (key, tids) in &groups {
            assert_eq!(tids.len(), 2, "cell {key:?}");
        }
        // Cell a1 = code 0 holds t1, t3 = tids 0 and 2.
        assert_eq!(groups[0].1, vec![0, 2]);
    }

    #[test]
    fn group_by_composite() {
        let r = sample();
        let groups = group_by(&r, CuboidMask::from_dims(&[0, 1]));
        // Pairs: (a1,b1)x2, (a2,b2), (a3,b3)x2, (a4,b1), (a2,b3), (a4,b2)
        assert_eq!(groups.len(), 6);
        let total: usize = groups.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn group_by_apex_is_whole_table() {
        let r = sample();
        let groups = group_by(&r, CuboidMask::APEX);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 8);
    }
}
