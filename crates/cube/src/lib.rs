//! The data-cube model over boolean dimensions (§III, §IV-A).
//!
//! The paper's problem setting is a relation `R` with *boolean dimensions*
//! `A1..Ab` (categorical attributes queried with equality predicates) and
//! *preference dimensions* `N1..Np` (numeric attributes ranked or
//! skyline-compared). This crate owns the relational side:
//!
//! * [`Schema`] and [`Dictionary`] — named dimensions; string values of
//!   boolean dimensions are dictionary-encoded to dense `u32` codes.
//! * [`Relation`] — a columnar base table with a simulated heap file, so
//!   table scans and random tuple accesses are charged to the same I/O
//!   ledger the indexes use (`DBool` in Fig 9 is exactly the random-access
//!   counter).
//! * [`CuboidMask`], [`CellKey`], [`CellRegistry`] — the cuboid lattice and
//!   dense cell ids. P-Cube materializes the *atomic* (one-dimensional)
//!   cuboids by default and assembles higher-order cells at query time by
//!   signature intersection.
//! * [`Predicate`] / [`Selection`] — conjunctive multi-dimensional boolean
//!   selections, the `WHERE A1 = a1 AND …` part of the paper's queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod predicate;
mod relation;
mod schema;

pub use cube::{group_by, CellKey, CellRegistry, CuboidMask, MaterializationPlan};
pub use predicate::{normalize, Predicate, Selection};
pub use relation::Relation;
pub use schema::{Dictionary, Schema};
