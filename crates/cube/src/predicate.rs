//! Conjunctive boolean selections.

/// One equality predicate `A_dim = value` on a boolean dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Index of the boolean dimension.
    pub dim: usize,
    /// Dictionary code of the required value.
    pub value: u32,
}

/// A conjunction of equality predicates — the paper's
/// `WHERE A1 = a1 AND … AND Ai = ai`. The empty selection accepts every
/// tuple (`BP = ∅`).
pub type Selection = Vec<Predicate>;

/// Returns `selection` with any duplicate predicates removed, validating
/// that no dimension is constrained to two different values (which would be
/// unsatisfiable and is almost certainly a caller bug).
///
/// # Panics
/// Panics on contradictory predicates.
pub fn normalize(selection: &Selection) -> Selection {
    let mut out: Selection = Vec::with_capacity(selection.len());
    for p in selection {
        match out.iter().find(|q| q.dim == p.dim) {
            Some(q) if q.value != p.value => {
                panic!("contradictory predicates on dimension {}", p.dim)
            }
            Some(_) => {}
            None => out.push(*p),
        }
    }
    out.sort_by_key(|p| p.dim);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_dedups() {
        let sel = vec![
            Predicate { dim: 2, value: 5 },
            Predicate { dim: 0, value: 1 },
            Predicate { dim: 2, value: 5 },
        ];
        let n = normalize(&sel);
        assert_eq!(n, vec![Predicate { dim: 0, value: 1 }, Predicate { dim: 2, value: 5 }]);
    }

    #[test]
    fn empty_selection_normalizes_to_empty() {
        assert!(normalize(&Vec::new()).is_empty());
    }

    #[test]
    #[should_panic]
    fn contradiction_panics() {
        let sel = vec![Predicate { dim: 1, value: 2 }, Predicate { dim: 1, value: 3 }];
        let _ = normalize(&sel);
    }
}
