//! Dimension names and dictionary encoding for boolean-dimension values.

use std::collections::HashMap;

/// Order-of-insertion dictionary mapping string values to dense `u32` codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    codes: HashMap<String, u32>,
    values: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Returns the code for `value`, allocating the next code on first use.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&c) = self.codes.get(value) {
            return c;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary full");
        self.codes.insert(value.to_owned(), code);
        self.values.push(value.to_owned());
        code
    }

    /// The code for `value`, if it has been interned.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// The string for `code`, if allocated.
    pub fn value(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values (the dimension's cardinality so far).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no value has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned values in code order (code `i` = `values()[i]`).
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

/// Names of the boolean and preference dimensions of a relation.
///
/// The sample schema of the paper's Example 1 would be
/// `Schema::new(&["type", "maker", "color"], &["price", "mileage"])`.
#[derive(Debug, Clone)]
pub struct Schema {
    bool_dims: Vec<String>,
    pref_dims: Vec<String>,
}

impl Schema {
    /// Creates a schema from dimension names.
    ///
    /// # Panics
    /// Panics on duplicate names within a dimension set or empty preference
    /// dimensions.
    pub fn new(bool_dims: &[&str], pref_dims: &[&str]) -> Self {
        assert!(!pref_dims.is_empty(), "need at least one preference dimension");
        let unique = |v: &[&str]| {
            let mut s: Vec<&str> = v.to_vec();
            s.sort_unstable();
            s.dedup();
            s.len() == v.len()
        };
        assert!(unique(bool_dims), "duplicate boolean dimension name");
        assert!(unique(pref_dims), "duplicate preference dimension name");
        Schema {
            bool_dims: bool_dims.iter().map(|s| s.to_string()).collect(),
            pref_dims: pref_dims.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of boolean dimensions (`Db`).
    pub fn n_bool(&self) -> usize {
        self.bool_dims.len()
    }

    /// Number of preference dimensions (`Dp`).
    pub fn n_pref(&self) -> usize {
        self.pref_dims.len()
    }

    /// Name of boolean dimension `i`.
    pub fn bool_name(&self, i: usize) -> &str {
        &self.bool_dims[i]
    }

    /// Name of preference dimension `i`.
    pub fn pref_name(&self, i: usize) -> &str {
        &self.pref_dims[i]
    }

    /// Index of the boolean dimension called `name`.
    pub fn bool_index(&self, name: &str) -> Option<usize> {
        self.bool_dims.iter().position(|d| d == name)
    }

    /// Index of the preference dimension called `name`.
    pub fn pref_index(&self, name: &str) -> Option<usize> {
        self.pref_dims.iter().position(|d| d == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interns_and_reuses_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("sedan"), 0);
        assert_eq!(d.intern("suv"), 1);
        assert_eq!(d.intern("sedan"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.code("suv"), Some(1));
        assert_eq!(d.code("coupe"), None);
        assert_eq!(d.value(0), Some("sedan"));
        assert_eq!(d.value(9), None);
    }

    #[test]
    fn schema_lookups() {
        let s = Schema::new(&["type", "maker", "color"], &["price", "mileage"]);
        assert_eq!(s.n_bool(), 3);
        assert_eq!(s.n_pref(), 2);
        assert_eq!(s.bool_index("color"), Some(2));
        assert_eq!(s.bool_index("price"), None);
        assert_eq!(s.pref_index("price"), Some(0));
        assert_eq!(s.bool_name(0), "type");
        assert_eq!(s.pref_name(1), "mileage");
    }

    #[test]
    #[should_panic]
    fn duplicate_dimension_rejected() {
        let _ = Schema::new(&["a", "a"], &["x"]);
    }

    #[test]
    #[should_panic]
    fn empty_preference_dims_rejected() {
        let _ = Schema::new(&["a"], &[]);
    }
}
