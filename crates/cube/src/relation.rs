//! The columnar base table with a simulated heap file.

use std::cell::Cell;
use std::sync::Arc;

use pcube_storage::{IoCategory, SharedStats};

use crate::predicate::Selection;
use crate::schema::{Dictionary, Schema};

/// Rows per column chunk (power of two). Columns are append-only, so all
/// chunks but the last are frozen; sharing them via `Arc` makes cloning a
/// relation for an epoch snapshot `O(1)` and an append after a snapshot
/// re-own at most one partial chunk — never the whole column.
const CHUNK_ROWS: usize = 4096;

/// An append-only columnar vector chunked for copy-on-write sharing.
///
/// Two levels of `Arc`: the chunk spine is shared wholesale on clone (one
/// refcount bump), and each chunk is shared until a push must re-own the
/// last, partial one. Frozen (full) chunks are never copied again.
#[derive(Clone)]
struct ChunkedCol<T> {
    chunks: Arc<Vec<Arc<Vec<T>>>>,
    len: usize,
}

impl<T: Copy> ChunkedCol<T> {
    fn new() -> Self {
        ChunkedCol { chunks: Arc::new(Vec::new()), len: 0 }
    }

    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, i: usize) -> T {
        self.chunks[i / CHUNK_ROWS][i % CHUNK_ROWS]
    }

    fn push(&mut self, v: T) {
        let chunks = Arc::make_mut(&mut self.chunks);
        if self.len.is_multiple_of(CHUNK_ROWS) {
            chunks.push(Arc::new(Vec::with_capacity(CHUNK_ROWS)));
        }
        let last = chunks.last_mut().expect("invariant: chunk was just ensured");
        Arc::make_mut(last).push(v);
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }

    /// Number of frozen chunks physically shared (same `Arc`) with `other`.
    fn chunks_shared_with(&self, other: &Self) -> usize {
        self.chunks
            .iter()
            .zip(other.chunks.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

/// The base relation `R`: boolean columns (dictionary-encoded `u32`) and
/// preference columns (`f64`), stored column-wise, plus a *simulated heap
/// file* so tuple accesses cost I/O like the paper's:
///
/// * [`Relation::fetch`] — random access by tid, charging one
///   [`IoCategory::TupleRandomAccess`] (this is the `DBool` counter of
///   Fig 9, used by the domination-first baseline's boolean verification);
/// * [`Relation::scan`] — a full table scan charging one
///   [`IoCategory::HeapScan`] per heap page (the table-scan alternative of
///   the boolean-first baseline).
#[derive(Clone)]
pub struct Relation {
    /// Shared, not deep-cloned: the schema is immutable after construction
    /// and the dictionaries mutate only on string-valued appends (never on
    /// the coded maintenance path), so epoch snapshots share them via `Arc`
    /// instead of reallocating every name and value string per clone.
    schema: Arc<Schema>,
    dictionaries: Arc<Vec<Dictionary>>,
    bool_cols: Vec<ChunkedCol<u32>>,
    pref_cols: Vec<ChunkedCol<f64>>,
    page_size: usize,
    stats: Option<SharedStats>,
}

impl Relation {
    /// Creates an empty relation with 4 KB heap pages.
    pub fn new(schema: Schema) -> Self {
        let nb = schema.n_bool();
        let np = schema.n_pref();
        Relation {
            schema: Arc::new(schema),
            dictionaries: Arc::new(vec![Dictionary::new(); nb]),
            bool_cols: vec![ChunkedCol::new(); nb],
            pref_cols: vec![ChunkedCol::new(); np],
            page_size: pcube_storage::PAGE_SIZE,
            stats: None,
        }
    }

    /// Attaches the shared I/O ledger that tuple accesses are charged to.
    pub fn attach_stats(&mut self, stats: SharedStats) {
        self.stats = Some(stats);
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dictionary of boolean dimension `dim`.
    pub fn dictionary(&self, dim: usize) -> &Dictionary {
        &self.dictionaries[dim]
    }

    /// Re-interns dictionary values in code order (persistence restore).
    ///
    /// # Panics
    /// Panics if the dimension's dictionary is not empty.
    pub fn restore_dictionary(&mut self, dim: usize, values: &[String]) {
        assert!(self.dictionaries[dim].is_empty(), "dictionary already populated");
        let dicts = Arc::make_mut(&mut self.dictionaries);
        for v in values {
            dicts[dim].intern(v);
        }
    }

    /// Iterates the code column of boolean dimension `dim` in tid order.
    pub fn bool_column(&self, dim: usize) -> impl Iterator<Item = u32> + '_ {
        self.bool_cols[dim].iter()
    }

    /// Iterates the coordinate column of preference dimension `dim` in tid
    /// order.
    pub fn pref_column(&self, dim: usize) -> impl Iterator<Item = f64> + '_ {
        self.pref_cols[dim].iter()
    }

    /// Number of column chunks physically shared (same allocation) with a
    /// clone of this relation, summed over all columns. Epoch-snapshot tests
    /// use this to assert that cloning is copy-on-write, not a deep copy.
    pub fn chunks_shared_with(&self, other: &Relation) -> usize {
        self.bool_cols
            .iter()
            .zip(&other.bool_cols)
            .map(|(a, b)| a.chunks_shared_with(b))
            .sum::<usize>()
            + self
                .pref_cols
                .iter()
                .zip(&other.pref_cols)
                .map(|(a, b)| a.chunks_shared_with(b))
                .sum::<usize>()
    }

    /// Number of rows; row ids (tids) are `0..len`.
    pub fn len(&self) -> usize {
        self.pref_cols[0].len()
    }

    /// `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a row given raw codes and coordinates; returns its tid.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push_coded(&mut self, bool_codes: &[u32], pref_coords: &[f64]) -> u64 {
        assert_eq!(bool_codes.len(), self.schema.n_bool(), "boolean arity");
        assert_eq!(pref_coords.len(), self.schema.n_pref(), "preference arity");
        for (col, &c) in self.bool_cols.iter_mut().zip(bool_codes) {
            col.push(c);
        }
        for (col, &v) in self.pref_cols.iter_mut().zip(pref_coords) {
            col.push(v);
        }
        (self.len() - 1) as u64
    }

    /// Appends a row with string boolean values (interned on the fly).
    pub fn push(&mut self, bool_values: &[&str], pref_coords: &[f64]) -> u64 {
        assert_eq!(bool_values.len(), self.schema.n_bool(), "boolean arity");
        let codes: Vec<u32> = bool_values
            .iter()
            .zip(Arc::make_mut(&mut self.dictionaries).iter_mut())
            .map(|(v, d)| d.intern(v))
            .collect();
        self.push_coded(&codes, pref_coords)
    }

    /// Code of boolean dimension `dim` in row `tid` (no I/O charge; use
    /// [`Relation::fetch`] when the access models a disk read).
    pub fn bool_code(&self, tid: u64, dim: usize) -> u32 {
        self.bool_cols[dim].get(tid as usize)
    }

    /// Coordinates of row `tid` on all preference dimensions.
    pub fn pref_coords(&self, tid: u64) -> Vec<f64> {
        self.pref_cols.iter().map(|c| c.get(tid as usize)).collect()
    }

    /// Value of preference dimension `dim` in row `tid`.
    pub fn pref_value(&self, tid: u64, dim: usize) -> f64 {
        self.pref_cols[dim].get(tid as usize)
    }

    /// Bytes one tuple occupies in the simulated heap file.
    pub fn tuple_bytes(&self) -> usize {
        4 * self.schema.n_bool() + 8 * self.schema.n_pref()
    }

    /// Tuples per heap page.
    pub fn tuples_per_page(&self) -> usize {
        (self.page_size / self.tuple_bytes()).max(1)
    }

    /// Heap pages the table occupies.
    pub fn heap_pages(&self) -> u64 {
        (self.len() as u64).div_ceil(self.tuples_per_page() as u64)
    }

    /// Randomly accesses row `tid`, charging one tuple random access, and
    /// returns its boolean codes. This is the paper's "randomly accessing
    /// data by tid stored in the R-tree" for boolean verification.
    pub fn fetch(&self, tid: u64) -> Vec<u32> {
        if let Some(stats) = &self.stats {
            stats.record_reads(IoCategory::TupleRandomAccess, 1);
        }
        self.bool_cols.iter().map(|c| c.get(tid as usize)).collect()
    }

    /// `true` if row `tid` satisfies the conjunctive selection (no I/O
    /// charge — pair with [`Relation::fetch`] or scan accounting).
    pub fn matches(&self, tid: u64, selection: &Selection) -> bool {
        selection.iter().all(|p| self.bool_code(tid, p.dim) == p.value)
    }

    /// Scans the whole table, charging one sequential heap-page read per
    /// [`Relation::tuples_per_page`] rows, yielding tids matching
    /// `selection`.
    pub fn scan<'a>(&'a self, selection: &'a Selection) -> impl Iterator<Item = u64> + 'a {
        let per_page = self.tuples_per_page() as u64;
        // Page accounting is per iterator, so interleaved scans each charge
        // their own page reads.
        let last_page = Cell::new(u64::MAX);
        (0..self.len() as u64).filter(move |&tid| {
            let page = tid / per_page;
            if last_page.get() != page {
                last_page.set(page);
                if let Some(stats) = &self.stats {
                    stats.record_reads(IoCategory::HeapScan, 1);
                }
            }
            self.matches(tid, selection)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use pcube_storage::IoStats;

    fn sample() -> Relation {
        // The paper's Table I: A, B boolean; X, Y preference.
        let mut r = Relation::new(Schema::new(&["A", "B"], &["X", "Y"]));
        let rows = [
            ("a1", "b1", 0.00, 0.40),
            ("a2", "b2", 0.20, 0.60),
            ("a1", "b1", 0.30, 0.70),
            ("a3", "b3", 0.50, 0.40),
            ("a4", "b1", 0.60, 0.00),
            ("a2", "b3", 0.72, 0.30),
            ("a4", "b2", 0.72, 0.36),
            ("a3", "b3", 0.85, 0.62),
        ];
        for (a, b, x, y) in rows {
            r.push(&[a, b], &[x, y]);
        }
        r
    }

    #[test]
    fn push_and_read_back() {
        let r = sample();
        assert_eq!(r.len(), 8);
        assert_eq!(r.pref_coords(0), vec![0.00, 0.40]);
        assert_eq!(r.pref_value(5, 0), 0.72);
        // a1 interned first -> code 0; t3 (tid 2) is also a1.
        assert_eq!(r.bool_code(2, 0), 0);
        assert_eq!(r.dictionary(0).value(0), Some("a1"));
        assert_eq!(r.dictionary(0).len(), 4);
        assert_eq!(r.dictionary(1).len(), 3);
    }

    #[test]
    fn selection_matching() {
        let r = sample();
        let a1 = r.dictionary(0).code("a1").unwrap();
        let b1 = r.dictionary(1).code("b1").unwrap();
        let sel: Selection = vec![Predicate { dim: 0, value: a1 }, Predicate { dim: 1, value: b1 }];
        let matches: Vec<u64> = (0..8).filter(|&t| r.matches(t, &sel)).collect();
        assert_eq!(matches, vec![0, 2]); // t1 and t3 in paper numbering
    }

    #[test]
    fn fetch_charges_random_access() {
        let mut r = sample();
        let stats = IoStats::new_shared();
        r.attach_stats(stats.clone());
        let codes = r.fetch(3);
        assert_eq!(codes.len(), 2);
        assert_eq!(stats.reads(IoCategory::TupleRandomAccess), 1);
        r.fetch(4);
        assert_eq!(stats.reads(IoCategory::TupleRandomAccess), 2);
    }

    #[test]
    fn scan_charges_per_heap_page() {
        let mut r = Relation::new(Schema::new(&["A"], &["X"]));
        for i in 0..5000 {
            r.push_coded(&[i % 10], &[i as f64]);
        }
        let stats = IoStats::new_shared();
        r.attach_stats(stats.clone());
        let sel: Selection = vec![Predicate { dim: 0, value: 3 }];
        let hits = r.scan(&sel).count();
        assert_eq!(hits, 500);
        assert_eq!(stats.reads(IoCategory::HeapScan), r.heap_pages());
        assert!(r.heap_pages() < 5000 / 100, "pages should batch many tuples");
    }

    #[test]
    fn clone_shares_chunks_and_append_reowns_only_the_tail() {
        let mut r = Relation::new(Schema::new(&["A"], &["X"]));
        // 2.5 chunks worth of rows: two frozen chunks + one partial.
        let n = CHUNK_ROWS * 2 + CHUNK_ROWS / 2;
        for i in 0..n {
            r.push_coded(&[i as u32 % 7], &[i as f64]);
        }
        let snap = r.clone();
        // 1 bool + 1 pref column, 3 chunks each, all shared right after clone.
        assert_eq!(r.chunks_shared_with(&snap), 6);
        r.push_coded(&[1], &[1.0]);
        // Only the partial tail chunk of each column was re-owned.
        assert_eq!(r.chunks_shared_with(&snap), 4);
        // The snapshot is unaffected by the append.
        assert_eq!(snap.len(), n);
        assert_eq!(r.len(), n + 1);
        assert_eq!(snap.pref_value((n - 1) as u64, 0), (n - 1) as f64);
        assert_eq!(r.pref_value(n as u64, 0), 1.0);
        // Reads across chunk boundaries agree with the iterator view.
        let from_iter: Vec<f64> = r.pref_column(0).collect();
        assert_eq!(from_iter.len(), n + 1);
        assert_eq!(from_iter[CHUNK_ROWS], CHUNK_ROWS as f64);
        assert_eq!(r.pref_value(CHUNK_ROWS as u64, 0), CHUNK_ROWS as f64);
    }

    #[test]
    fn heap_geometry() {
        let r = sample();
        // 2 bool (4B) + 2 pref (8B) = 24 bytes per tuple.
        assert_eq!(r.tuple_bytes(), 24);
        assert_eq!(r.tuples_per_page(), 4096 / 24);
        assert_eq!(r.heap_pages(), 1);
    }
}
