//! Property tests for the cube model: group-by must partition the table,
//! and cells/selections must agree with row-level matching.
//!
//! Runs are fully reproducible: the vendored proptest derives its RNG seed
//! deterministically from the test's module path and name (override with
//! `PROPTEST_SEED`), so every CI run replays the identical case sequence.

use pcube_cube::{group_by, CellKey, CuboidMask, Predicate, Relation, Schema};
use proptest::prelude::*;

fn relation_from(rows: &[Vec<u32>]) -> Relation {
    let n_bool = rows.first().map_or(2, Vec::len);
    let names: Vec<String> = (0..n_bool).map(|i| format!("A{i}")).collect();
    let schema =
        Schema::new(&names.iter().map(String::as_str).collect::<Vec<_>>(), &["X"]);
    let mut r = Relation::new(schema);
    for row in rows {
        r.push_coded(row, &[0.5]);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn group_by_partitions_the_table(
        rows in prop::collection::vec(prop::collection::vec(0u32..5, 3..=3), 1..120),
        mask_bits in 0u32..8,
    ) {
        let r = relation_from(&rows);
        let mask = CuboidMask(mask_bits);
        let groups = group_by(&r, mask);
        // Every tid appears exactly once.
        let mut seen = vec![false; rows.len()];
        for (cell, tids) in &groups {
            for &tid in tids {
                prop_assert!(!seen[tid as usize], "tid {tid} in two cells");
                seen[tid as usize] = true;
                // And the row actually matches the cell's selection.
                prop_assert!(r.matches(tid, &cell.to_selection()));
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some tid missing from the partition");
    }

    #[test]
    fn cell_selection_roundtrip(dims in prop::collection::btree_set(0usize..8, 1..4),
                                values in prop::collection::vec(0u32..100, 3)) {
        let preds: Vec<Predicate> = dims
            .iter()
            .zip(values.iter().cycle())
            .map(|(&dim, &value)| Predicate { dim, value })
            .collect();
        let key = CellKey::from_selection(&preds);
        let back = key.to_selection();
        let mut expect = preds.clone();
        expect.sort_by_key(|p| p.dim);
        prop_assert_eq!(back, expect);
        prop_assert_eq!(key.mask.level(), dims.len());
    }

    #[test]
    fn scan_matches_filter(rows in prop::collection::vec(prop::collection::vec(0u32..4, 2..=2), 0..200),
                           d0 in 0u32..4) {
        if rows.is_empty() {
            return Ok(());
        }
        let r = relation_from(&rows);
        let sel = vec![Predicate { dim: 0, value: d0 }];
        let scanned: Vec<u64> = r.scan(&sel).collect();
        let expect: Vec<u64> =
            (0..rows.len() as u64).filter(|&t| r.bool_code(t, 0) == d0).collect();
        prop_assert_eq!(scanned, expect);
    }
}
