//! The Domination-first baseline (§VI-A): "We combine the BBS algorithm \[9\]
//! and minimal probing method \[3\]. … The BBS algorithm is similar to
//! Algorithm 1, except that there is no boolean checking in the prune
//! procedure. For each candidate result, we conduct a boolean verification
//! guided by the minimal probing principle: … we only issue a boolean
//! checking for a tuple in between lines 7 and 8." Each verification is a
//! random tuple access by tid (the `DBool` counter of Fig 9). For top-k
//! queries the same scheme is called **Ranking**.

use pcube_core::query::{Candidate, CandidateHeap};
use pcube_core::{MinCoordSum, PCubeDb, QueryStats, RankingFunction};
use pcube_cube::{normalize, Selection};
use pcube_rtree::{DecodedEntry, Mbr, Path};

use crate::reference::dominates;

/// BBS skyline with lazy (minimal-probing) boolean verification.
pub fn bbs_skyline(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
) -> (Vec<(u64, Vec<f64>)>, QueryStats) {
    let selection = normalize(selection);
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let f = MinCoordSum::new(pref_dims.to_vec());
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut result: Vec<(u64, Vec<f64>)> = Vec::new();
    let mut stats = QueryStats::default();

    while let Some(entry) = heap.pop() {
        let corner: &[f64] = match &entry.cand {
            Candidate::Tuple { coords, .. } => coords,
            Candidate::Node { mbr, .. } => &mbr.min,
        };
        if result.iter().any(|(_, s)| dominates(s, corner, pref_dims)) {
            continue;
        }
        match entry.cand {
            Candidate::Tuple { tid, coords, .. } => {
                // Minimal probing: verify the boolean predicates only now,
                // by fetching the tuple (one DBool random access).
                let codes = db.relation().fetch(tid);
                if selection.iter().all(|p| codes[p.dim] == p.value) {
                    result.push((tid, coords));
                }
            }
            Candidate::Node { pid, path, .. } => {
                let node = db.rtree().read_node(pid);
                stats.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            if !result.iter().any(|(_, s)| dominates(s, &coords, pref_dims)) {
                                let score = f.score(&coords);
                                heap.push(
                                    score,
                                    Candidate::Tuple {
                                        tid,
                                        path: child_path,
                                        coords,
                                    },
                                );
                            }
                        }
                        DecodedEntry::Child { child, mbr } => {
                            if !result.iter().any(|(_, s)| dominates(s, &mbr.min, pref_dims)) {
                                let score = f.lower_bound(&mbr);
                                heap.push(
                                    score,
                                    Candidate::Node {
                                        pid: child,
                                        path: child_path,
                                        mbr,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    stats.peak_heap = heap.peak_size();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    (result, stats)
}

/// Best-first top-k ("Ranking") with lazy boolean verification.
pub fn ranking_topk(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
) -> (Vec<(u64, Vec<f64>, f64)>, QueryStats) {
    let selection = normalize(selection);
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut result: Vec<(u64, Vec<f64>, f64)> = Vec::new();
    let mut stats = QueryStats::default();

    while let Some(entry) = heap.pop() {
        if result.len() >= k {
            break;
        }
        match entry.cand {
            Candidate::Tuple { tid, coords, .. } => {
                let codes = db.relation().fetch(tid); // minimal probing (DBool)
                if selection.iter().all(|p| codes[p.dim] == p.value) {
                    result.push((tid, coords, entry.score));
                }
            }
            Candidate::Node { pid, path, .. } => {
                let node = db.rtree().read_node(pid);
                stats.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            let score = f.score(&coords);
                            heap.push(
                                score,
                                Candidate::Tuple { tid, path: child_path, coords },
                            );
                        }
                        DecodedEntry::Child { child, mbr } => {
                            let score = f.lower_bound(&mbr);
                            heap.push(
                                score,
                                Candidate::Node { pid: child, path: child_path, mbr },
                            );
                        }
                    }
                }
            }
        }
    }
    stats.peak_heap = heap.peak_size();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    (result, stats)
}

fn seed_root(db: &PCubeDb, heap: &mut CandidateHeap) {
    let dims = db.rtree().dims();
    let mbr = Mbr { min: vec![f64::NEG_INFINITY; dims], max: vec![f64::INFINITY; dims] };
    heap.push(
        f64::NEG_INFINITY,
        Candidate::Node { pid: db.rtree().root_pid(), path: Path::root(), mbr },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_core::{LinearFn, PCubeConfig};
    use pcube_data::{synthetic, SyntheticSpec};
    use pcube_storage::IoCategory;

    fn db() -> PCubeDb {
        let spec = SyntheticSpec {
            n_tuples: 600,
            n_bool: 2,
            n_pref: 2,
            cardinality: 4,
            ..Default::default()
        };
        PCubeDb::build(synthetic(&spec), &PCubeConfig::default())
    }

    #[test]
    fn bbs_skyline_matches_oracle() {
        let db = db();
        let sel = vec![pcube_cube::Predicate { dim: 0, value: 1 }];
        let (sky, stats) = bbs_skyline(&db, &sel, &[0, 1]);
        let qualifying: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let mut expect: Vec<u64> =
            crate::reference::bnl_skyline(&qualifying, &[0, 1]).iter().map(|p| p.0).collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = sky.iter().map(|p| p.0).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert!(stats.io.reads(IoCategory::TupleRandomAccess) > 0, "must probe tuples");
        assert_eq!(stats.io.reads(IoCategory::SignaturePage), 0, "no signatures here");
    }

    #[test]
    fn ranking_topk_matches_oracle() {
        let db = db();
        let sel = vec![pcube_cube::Predicate { dim: 1, value: 2 }];
        let f = LinearFn::new(vec![0.4, 0.6]);
        let (top, stats) = ranking_topk(&db, &sel, 7, &f);
        let qualifying: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let expect = crate::reference::naive_topk(&qualifying, 7, &f);
        assert_eq!(top.len(), expect.len());
        for (g, e) in top.iter().zip(&expect) {
            assert!((g.2 - e.2).abs() < 1e-12, "{} vs {}", g.2, e.2);
        }
        assert!(stats.peak_heap > 0);
    }

    #[test]
    fn no_selection_means_plain_bbs() {
        let db = db();
        let (sky, stats) = bbs_skyline(&db, &Vec::new(), &[0, 1]);
        let all: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let expect = crate::reference::bnl_skyline(&all, &[0, 1]);
        assert_eq!(sky.len(), expect.len());
        // Even with no predicates, minimal probing still fetches each
        // candidate result once (it cannot know BP = ∅ is free).
        assert_eq!(
            stats.io.reads(IoCategory::TupleRandomAccess),
            sky.len() as u64
        );
    }
}
