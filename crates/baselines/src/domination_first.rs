//! The Domination-first baseline (§VI-A): "We combine the BBS algorithm \[9\]
//! and minimal probing method \[3\]. … The BBS algorithm is similar to
//! Algorithm 1, except that there is no boolean checking in the prune
//! procedure. For each candidate result, we conduct a boolean verification
//! guided by the minimal probing principle: … we only issue a boolean
//! checking for a tuple in between lines 7 and 8." Each verification is a
//! random tuple access by tid (the `DBool` counter of Fig 9). For top-k
//! queries the same scheme is called **Ranking**.

use pcube_core::query::{Candidate, CandidateHeap, Governor};
use pcube_core::{
    CancelToken, MinCoordSum, PCubeDb, Progress, QueryBudget, QueryOutcome, QueryStats,
    RankingFunction, StopReason,
};
use pcube_cube::{normalize, Selection};
use pcube_rtree::{DecodedEntry, Mbr, Path};

use crate::reference::dominates;

/// Builds the baseline engines' per-query governor, or `None` when the
/// budget is unlimited and no cancel token is attached (zero per-pop
/// checks — the ungoverned path is untouched). Mirrors the core engines'
/// construction: the ledger baseline is the shared counter *now*, so every
/// block the query touches counts against the budget.
pub(crate) fn make_governor(
    db: &PCubeDb,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Option<Governor> {
    if budget.is_unlimited() && cancel.is_none() {
        return None;
    }
    let mut gov = Governor::new(budget);
    if let Some(c) = cancel {
        gov = gov.with_cancel(c.clone());
    }
    Some(gov.with_ledger(db.stats().clone(), db.stats().total_reads()))
}

/// Folds a governor trip into a baseline engine's stats. Call after
/// `stats.io` is final so `blocks_used` matches the reported I/O.
pub(crate) fn apply_trip(
    stats: &mut QueryStats,
    gov: &Governor,
    reason: StopReason,
    pops: u64,
    results_so_far: usize,
    frontier: u64,
) {
    stats.outcome = QueryOutcome::Partial {
        reason,
        progress: Progress {
            pops,
            nodes_expanded: stats.nodes_expanded,
            results_so_far,
            blocks_used: stats.io.total_reads(),
            frontier,
            overshoot_seconds: gov.overshoot_seconds(),
            max_pop_seconds: gov.max_pop_seconds(),
        },
    };
}

/// BBS skyline with lazy (minimal-probing) boolean verification.
pub fn bbs_skyline(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
) -> (Vec<(u64, Vec<f64>)>, QueryStats) {
    bbs_skyline_governed(db, selection, pref_dims, &QueryBudget::unlimited(), None)
}

/// [`bbs_skyline`] under a [`QueryBudget`] and optional [`CancelToken`],
/// checked cooperatively at pop granularity exactly like the core kernel.
/// BBS accepts only never-dominated points, so a partial answer is a sound
/// subset of the full skyline.
pub fn bbs_skyline_governed(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> (Vec<(u64, Vec<f64>)>, QueryStats) {
    let selection = normalize(selection);
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut gov = make_governor(db, budget, cancel);
    let f = MinCoordSum::new(pref_dims.to_vec());
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut result: Vec<(u64, Vec<f64>)> = Vec::new();
    let mut stats = QueryStats::default();
    let mut pops = 0u64;
    let mut trip: Option<(StopReason, u64)> = None;

    while let Some(entry) = heap.pop() {
        pops += 1;
        if let Some(g) = gov.as_mut() {
            if let Some(reason) = g.check(heap.len()) {
                trip = Some((reason, 1 + heap.len() as u64));
                break;
            }
        }
        let corner: &[f64] = match &entry.cand {
            Candidate::Tuple { coords, .. } => coords,
            Candidate::Node { mbr, .. } => &mbr.min,
        };
        if result.iter().any(|(_, s)| dominates(s, corner, pref_dims)) {
            continue;
        }
        match entry.cand {
            Candidate::Tuple { tid, coords, .. } => {
                // Minimal probing: verify the boolean predicates only now,
                // by fetching the tuple (one DBool random access).
                let codes = db.relation().fetch(tid);
                if selection.iter().all(|p| codes[p.dim] == p.value) {
                    result.push((tid, coords));
                }
            }
            Candidate::Node { pid, path, .. } => {
                let node = db.rtree().read_node(pid);
                stats.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            if !result.iter().any(|(_, s)| dominates(s, &coords, pref_dims)) {
                                let score = f.score(&coords);
                                heap.push(
                                    score,
                                    Candidate::Tuple {
                                        tid,
                                        path: child_path,
                                        coords,
                                    },
                                );
                            }
                        }
                        DecodedEntry::Child { child, mbr } => {
                            if !result.iter().any(|(_, s)| dominates(s, &mbr.min, pref_dims)) {
                                let score = f.lower_bound(&mbr);
                                heap.push(
                                    score,
                                    Candidate::Node {
                                        pid: child,
                                        path: child_path,
                                        mbr,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    stats.peak_heap = heap.peak_size();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    if let (Some((reason, frontier)), Some(g)) = (trip, gov.as_ref()) {
        apply_trip(&mut stats, g, reason, pops, result.len(), frontier);
    }
    (result, stats)
}

/// Best-first top-k ("Ranking") with lazy boolean verification.
pub fn ranking_topk(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
) -> (Vec<(u64, Vec<f64>, f64)>, QueryStats) {
    ranking_topk_governed(db, selection, k, f, &QueryBudget::unlimited(), None)
}

/// [`ranking_topk`] under a [`QueryBudget`] and optional [`CancelToken`].
/// Candidates surface in ascending score order and verified results are
/// accepted in that order, so a partial top-k is a prefix of the true
/// top-k.
pub fn ranking_topk_governed(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> (Vec<(u64, Vec<f64>, f64)>, QueryStats) {
    let selection = normalize(selection);
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut gov = make_governor(db, budget, cancel);
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut result: Vec<(u64, Vec<f64>, f64)> = Vec::new();
    let mut stats = QueryStats::default();
    let mut pops = 0u64;
    let mut trip: Option<(StopReason, u64)> = None;

    while let Some(entry) = heap.pop() {
        if result.len() >= k {
            break;
        }
        pops += 1;
        if let Some(g) = gov.as_mut() {
            if let Some(reason) = g.check(heap.len()) {
                trip = Some((reason, 1 + heap.len() as u64));
                break;
            }
        }
        match entry.cand {
            Candidate::Tuple { tid, coords, .. } => {
                let codes = db.relation().fetch(tid); // minimal probing (DBool)
                if selection.iter().all(|p| codes[p.dim] == p.value) {
                    result.push((tid, coords, entry.score));
                }
            }
            Candidate::Node { pid, path, .. } => {
                let node = db.rtree().read_node(pid);
                stats.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            let score = f.score(&coords);
                            heap.push(
                                score,
                                Candidate::Tuple { tid, path: child_path, coords },
                            );
                        }
                        DecodedEntry::Child { child, mbr } => {
                            let score = f.lower_bound(&mbr);
                            heap.push(
                                score,
                                Candidate::Node { pid: child, path: child_path, mbr },
                            );
                        }
                    }
                }
            }
        }
    }
    stats.peak_heap = heap.peak_size();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    if let (Some((reason, frontier)), Some(g)) = (trip, gov.as_ref()) {
        apply_trip(&mut stats, g, reason, pops, result.len(), frontier);
    }
    (result, stats)
}

fn seed_root(db: &PCubeDb, heap: &mut CandidateHeap) {
    let dims = db.rtree().dims();
    let mbr = Mbr { min: vec![f64::NEG_INFINITY; dims], max: vec![f64::INFINITY; dims] };
    heap.push(
        f64::NEG_INFINITY,
        Candidate::Node { pid: db.rtree().root_pid(), path: Path::root(), mbr },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_core::{LinearFn, PCubeConfig};
    use pcube_data::{synthetic, SyntheticSpec};
    use pcube_storage::IoCategory;

    fn db() -> PCubeDb {
        let spec = SyntheticSpec {
            n_tuples: 600,
            n_bool: 2,
            n_pref: 2,
            cardinality: 4,
            ..Default::default()
        };
        PCubeDb::build(synthetic(&spec), &PCubeConfig::default())
    }

    #[test]
    fn bbs_skyline_matches_oracle() {
        let db = db();
        let sel = vec![pcube_cube::Predicate { dim: 0, value: 1 }];
        let (sky, stats) = bbs_skyline(&db, &sel, &[0, 1]);
        let qualifying: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let mut expect: Vec<u64> =
            crate::reference::bnl_skyline(&qualifying, &[0, 1]).iter().map(|p| p.0).collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = sky.iter().map(|p| p.0).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert!(stats.io.reads(IoCategory::TupleRandomAccess) > 0, "must probe tuples");
        assert_eq!(stats.io.reads(IoCategory::SignaturePage), 0, "no signatures here");
    }

    #[test]
    fn ranking_topk_matches_oracle() {
        let db = db();
        let sel = vec![pcube_cube::Predicate { dim: 1, value: 2 }];
        let f = LinearFn::new(vec![0.4, 0.6]);
        let (top, stats) = ranking_topk(&db, &sel, 7, &f);
        let qualifying: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let expect = crate::reference::naive_topk(&qualifying, 7, &f);
        assert_eq!(top.len(), expect.len());
        for (g, e) in top.iter().zip(&expect) {
            assert!((g.2 - e.2).abs() < 1e-12, "{} vs {}", g.2, e.2);
        }
        assert!(stats.peak_heap > 0);
    }

    #[test]
    fn no_selection_means_plain_bbs() {
        let db = db();
        let (sky, stats) = bbs_skyline(&db, &Vec::new(), &[0, 1]);
        let all: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let expect = crate::reference::bnl_skyline(&all, &[0, 1]);
        assert_eq!(sky.len(), expect.len());
        // Even with no predicates, minimal probing still fetches each
        // candidate result once (it cannot know BP = ∅ is free).
        assert_eq!(
            stats.io.reads(IoCategory::TupleRandomAccess),
            sky.len() as u64
        );
    }
}
