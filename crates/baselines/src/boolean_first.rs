//! The Boolean-first baseline (§VI-A): "We use B+-tree to index each boolean
//! dimension. Given the boolean predicates, we first select tuples satisfying
//! the boolean conditions. This may be conducted by index scan or table scan,
//! and we report the best performance of the two alternatives."
//!
//! The preference step then runs over the selected tuples in memory (SFS for
//! skylines, a full sort for top-k) — boolean pruning only, no preference
//! pruning against the indexes.

use pcube_bptree::{composite_key, BPlusTree};
use pcube_core::{CancelToken, PCubeDb, QueryBudget, QueryStats, RankingFunction};
use pcube_cube::{normalize, Relation, Selection};
use pcube_storage::{CostModel, IoCategory, Pager};

use crate::domination_first::{apply_trip, make_governor};
use crate::reference::{naive_topk, sfs_skyline};

/// How the Boolean-first baseline retrieves the qualifying tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectRoute {
    /// Pick index scan or table scan by the cost model's estimate — the
    /// paper's "we report the best performance of the two alternatives".
    Auto,
    /// Force B+-tree index scans + random tuple fetches (unclustered
    /// access; this is the variant whose cost the paper's Fig 8 Boolean
    /// series exhibits).
    Index,
    /// Force a sequential heap scan.
    Scan,
}

/// One B+-tree per boolean dimension, keyed by `(value, tid)` composites,
/// plus per-value row counts (the catalog statistics the optimizer's
/// index-vs-scan decision is based on).
pub struct BooleanIndexSet {
    trees: Vec<BPlusTree>,
    value_counts: Vec<std::collections::HashMap<u32, u64>>,
}

impl BooleanIndexSet {
    /// Bulk loads an index for every boolean dimension of `relation`,
    /// charging page writes to `page_size`-sized B+-tree pages on the
    /// relation's ledger.
    pub fn build(relation: &Relation, page_size: usize, stats: pcube_storage::SharedStats) -> Self {
        let n = relation.len() as u64;
        let mut value_counts = Vec::new();
        let trees = (0..relation.schema().n_bool())
            .map(|dim| {
                let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
                let mut entries: Vec<(u64, u64)> = (0..n)
                    .map(|tid| {
                        let v = relation.bool_code(tid, dim);
                        *counts.entry(v).or_default() += 1;
                        (composite_key(v, tid as u32), 1)
                    })
                    .collect();
                value_counts.push(counts);
                entries.sort_unstable_by_key(|(k, _)| *k);
                let pager = Pager::new(page_size, IoCategory::BptreePage, stats.clone());
                let mut tree = BPlusTree::bulk_load(pager, entries, 1.0);
                // Internal pages pinned, as any warm buffer pool would.
                tree.set_internal_pinning(true);
                tree
            })
            .collect();
        BooleanIndexSet { trees, value_counts }
    }

    /// Exact number of rows with `A_dim = value` (catalog statistic; free).
    pub fn value_count(&self, dim: usize, value: u32) -> u64 {
        self.value_counts[dim].get(&value).copied().unwrap_or(0)
    }

    /// Total bytes of all index pages (the Fig 6 "B-tree" series).
    pub fn size_bytes(&self) -> u64 {
        self.trees.iter().map(|t| t.pager().size_bytes()).sum()
    }

    /// Tids matching `A_dim = value`, ascending, via a counted range scan.
    pub fn lookup(&self, dim: usize, value: u32) -> Vec<u64> {
        self.trees[dim]
            .range(composite_key(value, 0)..=composite_key(value, u32::MAX))
            .map(|(k, _)| u64::from(k as u32))
            .collect()
    }

    /// `true` if the tuple `tid` has `A_dim = value` — one counted point
    /// lookup (used by the index-merge baseline's selective probes).
    pub fn probe(&self, dim: usize, value: u32, tid: u64) -> bool {
        self.trees[dim].get(composite_key(value, tid as u32)).is_some()
    }

    /// Selects the tids satisfying `selection` and returns their
    /// coordinates, routing per `route` (see [`SelectRoute`]). An empty
    /// selection always table-scans.
    pub fn select(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        cost: &CostModel,
        route: SelectRoute,
    ) -> Vec<(u64, Vec<f64>)> {
        let relation = db.relation();
        let selection = normalize(selection);
        let use_index = !selection.is_empty() && route != SelectRoute::Scan && (route == SelectRoute::Index || {
            // Cost the two routes from the catalog's exact per-value counts
            // (independence assumed across predicates). Index route: scan
            // each predicate's leaf range, then one random fetch per
            // estimated final match; scan route: every heap page once.
            let t = relation.len() as f64;
            let leaf_cap = 255.0; // 4 KB leaf, 16 B entries
            let mut index_pages = 0.0;
            let mut match_frac = 1.0;
            for p in &selection {
                let c = self.value_count(p.dim, p.value) as f64;
                index_pages += (c / leaf_cap).ceil() + 2.0; // range + descent
                match_frac *= c / t.max(1.0);
            }
            let matches_est = t * match_frac;
            let index_cost = (index_pages + matches_est) * cost.random_page_seconds;
            let scan_cost = relation.heap_pages() as f64 * cost.sequential_page_seconds;
            index_cost < scan_cost
        });
        if use_index {
            // Intersect ascending tid lists.
            let mut lists: Vec<Vec<u64>> =
                selection.iter().map(|p| self.lookup(p.dim, p.value)).collect();
            lists.sort_by_key(Vec::len);
            let mut current = lists.remove(0);
            for other in lists {
                let set: std::collections::HashSet<u64> = other.into_iter().collect();
                current.retain(|t| set.contains(t));
            }
            // Fetch coordinates by random access (counted per tuple).
            current
                .into_iter()
                .map(|tid| {
                    let _codes = relation.fetch(tid);
                    (tid, relation.pref_coords(tid))
                })
                .collect()
        } else {
            relation.scan(&selection).map(|tid| (tid, relation.pref_coords(tid))).collect()
        }
    }
}

/// Result of the Boolean-first skyline.
pub struct BooleanSkylineOutcome {
    /// Skyline `(tid, coords)` pairs.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics (peak "heap" = the selected candidate set held in
    /// memory, the Fig 10 measure for this method).
    pub stats: QueryStats,
}

/// Result of the Boolean-first top-k.
pub struct BooleanTopKOutcome {
    /// `(tid, coords, score)` ascending.
    pub topk: Vec<(u64, Vec<f64>, f64)>,
    /// Execution metrics.
    pub stats: QueryStats,
}

impl BooleanIndexSet {
    /// Boolean-first skyline: select then SFS (auto route).
    pub fn skyline(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
    ) -> BooleanSkylineOutcome {
        self.skyline_via(db, selection, pref_dims, SelectRoute::Auto)
    }

    /// Boolean-first skyline with an explicit retrieval route.
    pub fn skyline_via(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
        route: SelectRoute,
    ) -> BooleanSkylineOutcome {
        self.skyline_via_governed(db, selection, pref_dims, route, &QueryBudget::unlimited(), None)
    }

    /// [`Self::skyline_via`] under a [`QueryBudget`] and optional
    /// [`CancelToken`]. The selection step is monolithic, so governance is
    /// phase-granular: one check before the selection and one after. A trip
    /// yields an empty partial answer (this engine cannot report a sound
    /// sub-skyline before the preference step ran).
    pub fn skyline_via_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
        route: SelectRoute,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> BooleanSkylineOutcome {
        let started = std::time::Instant::now();
        let before = db.stats().snapshot();
        let mut gov = make_governor(db, budget, cancel);
        if let Some(reason) = gov.as_mut().and_then(|g| g.check(0)) {
            let mut stats = QueryStats {
                io: db.stats().snapshot().since(&before),
                cpu_seconds: started.elapsed().as_secs_f64(),
                ..Default::default()
            };
            // invariant: the check above came from this governor.
            apply_trip(&mut stats, gov.as_ref().expect("governor tripped"), reason, 0, 0, 0);
            return BooleanSkylineOutcome { skyline: Vec::new(), stats };
        }
        let candidates = self.select(db, selection, &CostModel::default(), route);
        let peak = candidates.len();
        let tripped = gov.as_mut().and_then(|g| g.check(peak));
        let skyline =
            if tripped.is_some() { Vec::new() } else { sfs_skyline(&candidates, pref_dims) };
        let mut stats = QueryStats {
            peak_heap: peak,
            io: db.stats().snapshot().since(&before),
            cpu_seconds: started.elapsed().as_secs_f64(),
            ..Default::default()
        };
        if let (Some(reason), Some(g)) = (tripped, gov.as_ref()) {
            apply_trip(&mut stats, g, reason, 1, 0, peak as u64);
        }
        BooleanSkylineOutcome { skyline, stats }
    }

    /// Boolean-first top-k: select then sort (auto route).
    pub fn topk(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> BooleanTopKOutcome {
        self.topk_via(db, selection, k, f, SelectRoute::Auto)
    }

    /// Boolean-first top-k with an explicit retrieval route.
    pub fn topk_via(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        route: SelectRoute,
    ) -> BooleanTopKOutcome {
        self.topk_via_governed(db, selection, k, f, route, &QueryBudget::unlimited(), None)
    }

    /// [`Self::topk_via`] under a [`QueryBudget`] and optional
    /// [`CancelToken`] — phase-granular governance like
    /// [`Self::skyline_via_governed`]; a trip yields an empty partial
    /// answer (trivially a prefix of the true top-k).
    #[allow(clippy::too_many_arguments)]
    pub fn topk_via_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        route: SelectRoute,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> BooleanTopKOutcome {
        let started = std::time::Instant::now();
        let before = db.stats().snapshot();
        let mut gov = make_governor(db, budget, cancel);
        if let Some(reason) = gov.as_mut().and_then(|g| g.check(0)) {
            let mut stats = QueryStats {
                io: db.stats().snapshot().since(&before),
                cpu_seconds: started.elapsed().as_secs_f64(),
                ..Default::default()
            };
            // invariant: the check above came from this governor.
            apply_trip(&mut stats, gov.as_ref().expect("governor tripped"), reason, 0, 0, 0);
            return BooleanTopKOutcome { topk: Vec::new(), stats };
        }
        let candidates = self.select(db, selection, &CostModel::default(), route);
        let peak = candidates.len();
        let tripped = gov.as_mut().and_then(|g| g.check(peak));
        let topk = if tripped.is_some() { Vec::new() } else { naive_topk(&candidates, k, f) };
        let mut stats = QueryStats {
            peak_heap: peak,
            io: db.stats().snapshot().since(&before),
            cpu_seconds: started.elapsed().as_secs_f64(),
            ..Default::default()
        };
        if let (Some(reason), Some(g)) = (tripped, gov.as_ref()) {
            apply_trip(&mut stats, g, reason, 1, 0, peak as u64);
        }
        BooleanTopKOutcome { topk, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_core::{LinearFn, PCubeConfig};
    use pcube_data::{synthetic, SyntheticSpec};

    fn small_db() -> (PCubeDb, BooleanIndexSet) {
        let spec = SyntheticSpec {
            n_tuples: 800,
            n_bool: 3,
            n_pref: 2,
            cardinality: 5,
            ..Default::default()
        };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
        let idx = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
        (db, idx)
    }

    #[test]
    fn lookup_matches_scan() {
        let (db, idx) = small_db();
        for value in 0..5u32 {
            let from_index = idx.lookup(1, value);
            let expect: Vec<u64> = (0..db.relation().len() as u64)
                .filter(|&t| db.relation().bool_code(t, 1) == value)
                .collect();
            assert_eq!(from_index, expect, "value {value}");
        }
    }

    #[test]
    fn probe_agrees_with_codes() {
        let (db, idx) = small_db();
        for tid in (0..800u64).step_by(37) {
            let v = db.relation().bool_code(tid, 2);
            assert!(idx.probe(2, v, tid));
            assert!(!idx.probe(2, v + 1, tid) || db.relation().bool_code(tid, 2) == v + 1);
        }
    }

    #[test]
    fn select_returns_exactly_the_matching_tuples() {
        let (db, idx) = small_db();
        let sel = vec![
            pcube_cube::Predicate { dim: 0, value: 2 },
            pcube_cube::Predicate { dim: 2, value: 3 },
        ];
        let mut got: Vec<u64> =
            idx.select(&db, &sel, &CostModel::default(), SelectRoute::Auto).into_iter().map(|(t, _)| t).collect();
        got.sort_unstable();
        let expect: Vec<u64> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn skyline_equals_oracle_over_selection() {
        let (db, idx) = small_db();
        let sel = vec![pcube_cube::Predicate { dim: 1, value: 0 }];
        let out = idx.skyline(&db, &sel, &[0, 1]);
        let all: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let mut expect: Vec<u64> =
            crate::reference::bnl_skyline(&all, &[0, 1]).iter().map(|p| p.0).collect();
        expect.sort_unstable();
        let mut got: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert!(out.stats.io.total_reads() > 0, "selection must cost I/O");
    }

    #[test]
    fn topk_equals_oracle_over_selection() {
        let (db, idx) = small_db();
        let sel = vec![pcube_cube::Predicate { dim: 0, value: 1 }];
        let f = LinearFn::new(vec![0.7, 0.3]);
        let out = idx.topk(&db, &sel, 5, &f);
        let all: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let expect = naive_topk(&all, 5, &f);
        assert_eq!(out.topk.len(), expect.len());
        for (g, e) in out.topk.iter().zip(&expect) {
            assert!((g.2 - e.2).abs() < 1e-12, "scores must match");
        }
    }

    #[test]
    fn empty_selection_scans_whole_table() {
        let (db, idx) = small_db();
        db.stats().reset();
        let got = idx.select(&db, &Vec::new(), &CostModel::default(), SelectRoute::Auto);
        assert_eq!(got.len(), 800);
        assert_eq!(db.stats().reads(IoCategory::HeapScan), db.relation().heap_pages());
    }
}
