//! [`Executor`] adapters exposing the baseline engines to the §VI planner.
//!
//! Each adapter wraps one comparison method behind the uniform
//! [`Executor`] interface so that [`pcube_core::plan::Planner`] can
//! dispatch to it and the differential test suites can iterate every
//! engine with one loop. Results come back in the canonical orders the
//! serial engines already emit — ascending `(score, tid)` for top-k and
//! ascending `(coordinate sum, tid)` for skylines — so planner output is
//! comparable across engines tuple-for-tuple.

use pcube_core::{
    CancelToken, EngineKind, Executor, PCubeDb, QueryBudget, QueryStats, RankingFunction,
};
use pcube_cube::{normalize, Selection};

use crate::boolean_first::{BooleanIndexSet, SelectRoute};
use crate::domination_first::{bbs_skyline, bbs_skyline_governed, ranking_topk, ranking_topk_governed};
use crate::index_merge::{index_merge_topk, index_merge_topk_governed};

/// Boolean-first behind [`Executor`]: B+-tree (or heap-scan) selection,
/// then an in-memory preference step. Borrows a prebuilt
/// [`BooleanIndexSet`] so planning many queries shares one set of indexes.
///
/// Routing: the planner's objective is **block accesses**, so this
/// executor picks the index or scan route by predicted blocks — not by
/// [`SelectRoute::Auto`]'s modeled seconds, whose heavy random-page weight
/// would route nearly everything to a scan and hide the Fig 13 crossover.
pub struct BooleanFirstExecutor<'a> {
    indexes: &'a BooleanIndexSet,
}

impl<'a> BooleanFirstExecutor<'a> {
    /// Wraps the given index set.
    pub fn new(indexes: &'a BooleanIndexSet) -> Self {
        BooleanFirstExecutor { indexes }
    }

    /// Chooses index vs scan by predicted block accesses, from the same
    /// catalog counts `BooleanIndexSet::select` costs with: the index
    /// route reads each predicate's leaf range plus one fetch per
    /// estimated match, the scan route reads every heap page.
    fn block_route(&self, db: &PCubeDb, selection: &Selection) -> SelectRoute {
        let selection = normalize(selection);
        if selection.is_empty() {
            return SelectRoute::Scan;
        }
        let t = db.relation().len() as f64;
        let leaf_cap = 255.0; // 4 KB leaf, 16 B entries
        let mut index_pages = 0.0;
        let mut match_frac = 1.0;
        for p in &selection {
            let c = self.indexes.value_count(p.dim, p.value) as f64;
            index_pages += (c / leaf_cap).ceil() + 2.0;
            match_frac *= c / t.max(1.0);
        }
        if index_pages + t * match_frac < db.relation().heap_pages() as f64 {
            SelectRoute::Index
        } else {
            SelectRoute::Scan
        }
    }
}

impl Executor for BooleanFirstExecutor<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::BooleanFirst
    }

    fn topk(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> Option<(Vec<(u64, Vec<f64>, f64)>, QueryStats)> {
        let route = self.block_route(db, selection);
        let out = self.indexes.topk_via(db, selection, k, f, route);
        Some((out.topk, out.stats))
    }

    fn skyline(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
    ) -> Option<(Vec<(u64, Vec<f64>)>, QueryStats)> {
        let route = self.block_route(db, selection);
        let out = self.indexes.skyline_via(db, selection, pref_dims, route);
        Some((out.skyline, out.stats))
    }

    fn topk_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(Vec<(u64, Vec<f64>, f64)>, QueryStats)> {
        let route = self.block_route(db, selection);
        let out = self.indexes.topk_via_governed(db, selection, k, f, route, budget, cancel);
        Some((out.topk, out.stats))
    }

    fn skyline_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(Vec<(u64, Vec<f64>)>, QueryStats)> {
        let route = self.block_route(db, selection);
        let out =
            self.indexes.skyline_via_governed(db, selection, pref_dims, route, budget, cancel);
        Some((out.skyline, out.stats))
    }
}

/// Domination-first behind [`Executor`]: BBS / Ranking without boolean
/// pruning, verifying each candidate by a random tuple access.
pub struct DominationFirstExecutor;

impl Executor for DominationFirstExecutor {
    fn kind(&self) -> EngineKind {
        EngineKind::DominationFirst
    }

    fn topk(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> Option<(Vec<(u64, Vec<f64>, f64)>, QueryStats)> {
        Some(ranking_topk(db, selection, k, f))
    }

    fn skyline(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
    ) -> Option<(Vec<(u64, Vec<f64>)>, QueryStats)> {
        Some(bbs_skyline(db, selection, pref_dims))
    }

    fn topk_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(Vec<(u64, Vec<f64>, f64)>, QueryStats)> {
        Some(ranking_topk_governed(db, selection, k, f, budget, cancel))
    }

    fn skyline_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(Vec<(u64, Vec<f64>)>, QueryStats)> {
        Some(bbs_skyline_governed(db, selection, pref_dims, budget, cancel))
    }
}

/// Index-merge behind [`Executor`]: progressive R-tree expansion with
/// per-candidate B+-tree membership probes. Top-k only — `skyline`
/// returns `None`.
pub struct IndexMergeExecutor<'a> {
    indexes: &'a BooleanIndexSet,
}

impl<'a> IndexMergeExecutor<'a> {
    /// Wraps the given index set.
    pub fn new(indexes: &'a BooleanIndexSet) -> Self {
        IndexMergeExecutor { indexes }
    }
}

impl Executor for IndexMergeExecutor<'_> {
    fn kind(&self) -> EngineKind {
        EngineKind::IndexMerge
    }

    fn topk(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> Option<(Vec<(u64, Vec<f64>, f64)>, QueryStats)> {
        Some(index_merge_topk(db, self.indexes, selection, k, f))
    }

    fn skyline(
        &self,
        _db: &PCubeDb,
        _selection: &Selection,
        _pref_dims: &[usize],
    ) -> Option<(Vec<(u64, Vec<f64>)>, QueryStats)> {
        None
    }

    fn topk_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(Vec<(u64, Vec<f64>, f64)>, QueryStats)> {
        Some(index_merge_topk_governed(db, self.indexes, selection, k, f, budget, cancel))
    }
}
