//! The comparison methods of §VI-A, built on the same substrates (pager,
//! R-tree, B+-trees, relation) as the signature approach so that all methods
//! are measured on one I/O ledger:
//!
//! * [`boolean_first`] — **Boolean**: select tuples by B+-tree index scan or
//!   table scan (whichever the cost model prefers), then compute the
//!   skyline/top-k of the selected set in memory.
//! * [`domination_first`] — **Domination**/**Ranking**: the BBS progressive
//!   algorithm \[9\] without boolean pruning, verifying each candidate result
//!   by a random tuple access under the minimal-probing principle \[3\].
//! * [`index_merge`] — **Index Merge** \[14\] (top-k only): progressive R-tree
//!   expansion with selective B+-tree probes implementing the reformulated
//!   "MAX if predicates fail" ranking function.
//! * [`reference`](mod@reference) — in-memory oracles (BNL skyline,
//!   sort-based top-k) used as ground truth by the test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolean_first;
pub mod domination_first;
pub mod executor;
pub mod index_merge;
pub mod reference;

pub use boolean_first::{BooleanIndexSet, BooleanSkylineOutcome, BooleanTopKOutcome, SelectRoute};
pub use domination_first::{bbs_skyline, bbs_skyline_governed, ranking_topk, ranking_topk_governed};
pub use executor::{BooleanFirstExecutor, DominationFirstExecutor, IndexMergeExecutor};
pub use index_merge::{index_merge_topk, index_merge_topk_governed};
