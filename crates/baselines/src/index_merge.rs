//! The Index-merge baseline for top-k queries (§VI-A), after Xin et al.'s
//! progressive and selective merge \[14\].
//!
//! "We build B+-tree indices on boolean dimensions, and R-tree index on
//! preference dimensions. Given a query with boolean predicates, we join all
//! corresponding indices. The ranking function is re-formulated as follows:
//! if a data satisfies boolean predicates, the function value on preference
//! dimensions is returned. Otherwise, it returns MAX value."
//!
//! This implementation merges *progressively* (the R-tree is expanded
//! best-first, so only the promising part of the preference space is
//! joined) and *selectively* (a tuple's membership in each boolean index is
//! probed only when the tuple surfaces as a candidate — each probe is a
//! counted B+-tree point lookup). The closed-source original also adapts
//! between probing and list-scanning per predicate selectivity; we document
//! this simplification in DESIGN.md §3.

use pcube_core::query::{Candidate, CandidateHeap};
use pcube_core::{CancelToken, PCubeDb, QueryBudget, QueryStats, RankingFunction, StopReason};
use pcube_cube::{normalize, Selection};
use pcube_rtree::{DecodedEntry, Mbr, Path};

use crate::boolean_first::BooleanIndexSet;
use crate::domination_first::{apply_trip, make_governor};

/// Top-k by progressive & selective index merging.
pub fn index_merge_topk(
    db: &PCubeDb,
    indexes: &BooleanIndexSet,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
) -> (Vec<(u64, Vec<f64>, f64)>, QueryStats) {
    index_merge_topk_governed(db, indexes, selection, k, f, &QueryBudget::unlimited(), None)
}

/// [`index_merge_topk`] under a [`QueryBudget`] and optional
/// [`CancelToken`], checked cooperatively at pop granularity. Results are
/// accepted in ascending score order, so a partial answer is a prefix of
/// the true top-k.
pub fn index_merge_topk_governed(
    db: &PCubeDb,
    indexes: &BooleanIndexSet,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> (Vec<(u64, Vec<f64>, f64)>, QueryStats) {
    let selection = normalize(selection);
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut gov = make_governor(db, budget, cancel);
    let mut heap = CandidateHeap::new();
    let dims = db.rtree().dims();
    let mbr = Mbr { min: vec![f64::NEG_INFINITY; dims], max: vec![f64::INFINITY; dims] };
    heap.push(
        f64::NEG_INFINITY,
        Candidate::Node { pid: db.rtree().root_pid(), path: Path::root(), mbr },
    );
    let mut result: Vec<(u64, Vec<f64>, f64)> = Vec::new();
    let mut stats = QueryStats::default();
    let mut pops = 0u64;
    let mut trip: Option<(StopReason, u64)> = None;

    while let Some(entry) = heap.pop() {
        if result.len() >= k {
            break;
        }
        pops += 1;
        if let Some(g) = gov.as_mut() {
            if let Some(reason) = g.check(heap.len()) {
                trip = Some((reason, 1 + heap.len() as u64));
                break;
            }
        }
        match entry.cand {
            Candidate::Tuple { tid, coords, .. } => {
                // The reformulated ranking function: selective membership
                // probes against each predicate's B+-tree. Any miss means
                // MAX — the tuple simply drops out of the merge.
                if selection.iter().all(|p| indexes.probe(p.dim, p.value, tid)) {
                    result.push((tid, coords, entry.score));
                }
            }
            Candidate::Node { pid, path, .. } => {
                let node = db.rtree().read_node(pid);
                stats.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            let score = f.score(&coords);
                            heap.push(score, Candidate::Tuple { tid, path: child_path, coords });
                        }
                        DecodedEntry::Child { child, mbr } => {
                            let score = f.lower_bound(&mbr);
                            heap.push(score, Candidate::Node { pid: child, path: child_path, mbr });
                        }
                    }
                }
            }
        }
    }
    stats.peak_heap = heap.peak_size();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    if let (Some((reason, frontier)), Some(g)) = (trip, gov.as_ref()) {
        apply_trip(&mut stats, g, reason, pops, result.len(), frontier);
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_topk;
    use pcube_core::{LinearFn, PCubeConfig};
    use pcube_data::{synthetic, SyntheticSpec};
    use pcube_storage::IoCategory;

    #[test]
    fn index_merge_matches_oracle_and_charges_bptree_probes() {
        let spec = SyntheticSpec {
            n_tuples: 500,
            n_bool: 3,
            n_pref: 2,
            cardinality: 4,
            ..Default::default()
        };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
        let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
        let sel = vec![
            pcube_cube::Predicate { dim: 0, value: 2 },
            pcube_cube::Predicate { dim: 1, value: 1 },
        ];
        let f = LinearFn::new(vec![0.5, 0.5]);
        db.stats().reset();
        let (top, stats) = index_merge_topk(&db, &indexes, &sel, 5, &f);

        let qualifying: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
            .filter(|&t| db.relation().matches(t, &sel))
            .map(|t| (t, db.relation().pref_coords(t)))
            .collect();
        let expect = naive_topk(&qualifying, 5, &f);
        assert_eq!(top.len(), expect.len());
        for (g, e) in top.iter().zip(&expect) {
            assert!((g.2 - e.2).abs() < 1e-12);
        }
        assert!(stats.io.reads(IoCategory::BptreePage) > 0, "probes must cost B+-tree pages");
        assert_eq!(stats.io.reads(IoCategory::TupleRandomAccess), 0, "no heap probes");
        assert_eq!(stats.io.reads(IoCategory::SignaturePage), 0, "no signatures");
    }

    #[test]
    fn unselective_query_returns_global_topk() {
        let spec = SyntheticSpec { n_tuples: 300, n_pref: 2, ..Default::default() };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
        let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
        let f = LinearFn::new(vec![1.0, 1.0]);
        let (top, _) = index_merge_topk(&db, &indexes, &Vec::new(), 3, &f);
        let all: Vec<(u64, Vec<f64>)> =
            (0..300u64).map(|t| (t, db.relation().pref_coords(t))).collect();
        let expect = naive_topk(&all, 3, &f);
        for (g, e) in top.iter().zip(&expect) {
            assert!((g.2 - e.2).abs() < 1e-12);
        }
    }
}
