//! In-memory reference algorithms used as correctness oracles and as the
//! post-selection step of the Boolean-first baseline.

use pcube_core::RankingFunction;

/// Block-nested-loop skyline (Börzsönyi et al. \[2\]) over `(tid, coords)`
/// pairs, restricted to the given dimensions. Returns surviving pairs in
/// input order.
pub fn bnl_skyline(points: &[(u64, Vec<f64>)], dims: &[usize]) -> Vec<(u64, Vec<f64>)> {
    let mut window: Vec<(u64, Vec<f64>)> = Vec::new();
    'outer: for (tid, coords) in points {
        let mut i = 0;
        while i < window.len() {
            if dominates(&window[i].1, coords, dims) {
                continue 'outer;
            }
            if dominates(coords, &window[i].1, dims) {
                window.swap_remove(i);
            } else {
                i += 1;
            }
        }
        window.push((*tid, coords.clone()));
    }
    window
}

/// Sort-first skyline (Chomicki et al. \[7\]): pre-sorts by coordinate sum so
/// no window point is ever evicted. Same result set as [`bnl_skyline`].
pub fn sfs_skyline(points: &[(u64, Vec<f64>)], dims: &[usize]) -> Vec<(u64, Vec<f64>)> {
    let mut sorted: Vec<&(u64, Vec<f64>)> = points.iter().collect();
    sorted.sort_by(|a, b| {
        let sa: f64 = dims.iter().map(|&d| a.1[d]).sum();
        let sb: f64 = dims.iter().map(|&d| b.1[d]).sum();
        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    let mut window: Vec<(u64, Vec<f64>)> = Vec::new();
    for p in sorted {
        if !window.iter().any(|w| dominates(&w.1, &p.1, dims)) {
            window.push(p.clone());
        }
    }
    window
}

/// Exact top-k by full sort: `(tid, coords, score)` ascending by score,
/// ties by tid.
pub fn naive_topk(
    points: &[(u64, Vec<f64>)],
    k: usize,
    f: &dyn RankingFunction,
) -> Vec<(u64, Vec<f64>, f64)> {
    let mut scored: Vec<(u64, Vec<f64>, f64)> =
        points.iter().map(|(t, c)| (*t, c.clone(), f.score(c))).collect();
    scored.sort_by(|a, b| {
        a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

/// `a` dominates `b` on `dims`: no worse anywhere, better somewhere.
/// (Re-exported from the core engine so both sides share one definition.)
pub use pcube_core::query::dominates;

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_core::LinearFn;

    fn pts(raw: &[(f64, f64)]) -> Vec<(u64, Vec<f64>)> {
        raw.iter().enumerate().map(|(i, (x, y))| (i as u64, vec![*x, *y])).collect()
    }

    #[test]
    fn bnl_finds_staircase() {
        let points = pts(&[(0.1, 0.9), (0.5, 0.5), (0.9, 0.1), (0.6, 0.6), (0.1, 0.95)]);
        let mut sky: Vec<u64> = bnl_skyline(&points, &[0, 1]).iter().map(|p| p.0).collect();
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1, 2]);
    }

    #[test]
    fn bnl_and_sfs_agree_on_random_data() {
        // Deterministic pseudo-random points.
        let points: Vec<(u64, Vec<f64>)> = (0..300u64)
            .map(|i| {
                let x = (i as f64 * 0.754_877) % 1.0;
                let y = (i as f64 * 0.569_840) % 1.0;
                let z = (i as f64 * 0.342_123) % 1.0;
                (i, vec![x, y, z])
            })
            .collect();
        for dims in [vec![0, 1, 2], vec![0, 1], vec![2]] {
            let mut a: Vec<u64> = bnl_skyline(&points, &dims).iter().map(|p| p.0).collect();
            let mut b: Vec<u64> = sfs_skyline(&points, &dims).iter().map(|p| p.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "dims {dims:?}");
        }
    }

    #[test]
    fn duplicates_are_mutually_non_dominating() {
        let points = pts(&[(0.5, 0.5), (0.5, 0.5), (0.7, 0.7)]);
        let sky = bnl_skyline(&points, &[0, 1]);
        assert_eq!(sky.len(), 2, "both duplicates survive, the dominated point dies");
    }

    #[test]
    fn single_dimension_skyline_is_the_minima() {
        let points = pts(&[(0.3, 0.0), (0.1, 0.0), (0.1, 9.0), (0.2, 0.0)]);
        let sky: Vec<u64> = bnl_skyline(&points, &[0]).iter().map(|p| p.0).collect();
        assert_eq!(sky, vec![1, 2]);
    }

    #[test]
    fn naive_topk_orders_and_truncates() {
        let points = pts(&[(0.9, 0.9), (0.1, 0.1), (0.5, 0.5), (0.2, 0.1)]);
        let f = LinearFn::new(vec![1.0, 1.0]);
        let top = naive_topk(&points, 2, &f);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 3);
        assert!(top[0].2 <= top[1].2);
        // k larger than the set is fine.
        assert_eq!(naive_topk(&points, 10, &f).len(), 4);
    }

    #[test]
    fn empty_inputs() {
        assert!(bnl_skyline(&[], &[0]).is_empty());
        assert!(sfs_skyline(&[], &[0]).is_empty());
        assert!(naive_topk(&[], 3, &LinearFn::new(vec![1.0])).is_empty());
    }
}
