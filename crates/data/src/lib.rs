//! Workload generators for the P-Cube experiments (§VI-A).
//!
//! * [`SyntheticSpec`] — the paper's synthetic data: `T` tuples, `Db`
//!   boolean dimensions of cardinality `C` (uniform), `Dp` preference
//!   dimensions drawn from one of the three standard skyline distributions
//!   (independent/uniform, correlated, anti-correlated — Börzsönyi et al.).
//! * [`covertype_surrogate`] — a statistically matched stand-in for the UCI
//!   Forest CoverType data set used in §VI-B.4 (581,012 rows; 3 quantitative
//!   attributes with cardinalities 1989/5787/5827 as preference dimensions;
//!   12 categorical attributes with cardinalities 255, 207, 185, 67, 7 and
//!   seven binary ones as boolean dimensions). The real file is not
//!   downloadable in this environment; the surrogate reproduces the row
//!   count, attribute cardinalities and a skewed (Zipf) category
//!   distribution, which is what the boolean-selectivity experiments
//!   exercise. See DESIGN.md §3.
//! * Query-workload helpers: selections sampled from existing rows (so they
//!   are never vacuously empty) and random positive linear ranking
//!   functions for the top-k experiments (Fig 13).
//!
//! Everything is seeded and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pcube_cube::{Predicate, Relation, Schema, Selection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Preference-dimension distribution (Börzsönyi et al., ICDE 2001).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Each coordinate independently uniform in `[0, 1)` (the paper's
    /// default, `S = uniform`).
    Uniform,
    /// Coordinates clustered around the diagonal — few skyline points.
    Correlated,
    /// Coordinates clustered around the anti-diagonal plane — many skyline
    /// points.
    AntiCorrelated,
}

/// Parameters of a synthetic relation.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of tuples (`T`).
    pub n_tuples: usize,
    /// Number of boolean dimensions (`Db`).
    pub n_bool: usize,
    /// Number of preference dimensions (`Dp`).
    pub n_pref: usize,
    /// Cardinality of each boolean dimension (`C`), uniform values.
    pub cardinality: u32,
    /// Preference-dimension distribution (`S`).
    pub distribution: Distribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    /// The paper's §VI-B.1 defaults: `Db = Dp = 3`, `C = 100`, uniform.
    fn default() -> Self {
        SyntheticSpec {
            n_tuples: 100_000,
            n_bool: 3,
            n_pref: 3,
            cardinality: 100,
            distribution: Distribution::Uniform,
            seed: 42,
        }
    }
}

/// Generates a relation per `spec`. Boolean dimensions are named `A0…`,
/// preference dimensions `N0…`; boolean values are raw codes `0..C`.
pub fn synthetic(spec: &SyntheticSpec) -> Relation {
    let bool_names: Vec<String> = (0..spec.n_bool).map(|i| format!("A{i}")).collect();
    let pref_names: Vec<String> = (0..spec.n_pref).map(|i| format!("N{i}")).collect();
    let schema = Schema::new(
        &bool_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &pref_names.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut relation = Relation::new(schema);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut bool_codes = vec![0u32; spec.n_bool];
    let mut coords = vec![0f64; spec.n_pref];
    for _ in 0..spec.n_tuples {
        for c in bool_codes.iter_mut() {
            *c = rng.gen_range(0..spec.cardinality);
        }
        sample_pref(&mut rng, spec.distribution, &mut coords);
        relation.push_coded(&bool_codes, &coords);
    }
    relation
}

/// Draws one preference vector in `[0,1)^d` from the chosen distribution.
pub fn sample_pref(rng: &mut StdRng, distribution: Distribution, out: &mut [f64]) {
    match distribution {
        Distribution::Uniform => {
            for x in out.iter_mut() {
                *x = rng.gen::<f64>();
            }
        }
        Distribution::Correlated => {
            // A common level around the diagonal plus small per-dimension jitter.
            let base: f64 = rng.gen();
            for x in out.iter_mut() {
                let jitter: f64 = rng.gen::<f64>() * 0.2 - 0.1;
                *x = (base + jitter).clamp(0.0, 1.0 - f64::EPSILON);
            }
        }
        Distribution::AntiCorrelated => {
            // Points near the plane Σx ≈ d/2: draw a normal-ish total via
            // the sum of three uniforms, then split it with exponential
            // spacings (Dirichlet-like) across dimensions.
            let d = out.len() as f64;
            let total = ((rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) / 3.0 - 0.5)
                * 0.25
                + 0.5;
            let total = (total * d).clamp(0.0, d);
            let mut weights: Vec<f64> =
                out.iter().map(|_| -(1.0 - rng.gen::<f64>()).ln()).collect();
            let sum: f64 = weights.iter().sum();
            for w in weights.iter_mut() {
                *w /= sum;
            }
            for (x, w) in out.iter_mut().zip(&weights) {
                *x = (w * total).clamp(0.0, 1.0 - f64::EPSILON);
            }
        }
    }
}

/// Cardinalities of the CoverType attributes the paper selects (§VI-A).
pub const COVERTYPE_PREF_CARDINALITIES: [u32; 3] = [1989, 5787, 5827];
/// Boolean-dimension cardinalities of the CoverType selection (§VI-A).
pub const COVERTYPE_BOOL_CARDINALITIES: [u32; 12] = [255, 207, 185, 67, 7, 2, 2, 2, 2, 2, 2, 2];
/// Rows in the real CoverType data set.
pub const COVERTYPE_ROWS: usize = 581_012;

/// Builds the CoverType surrogate (§VI-B.4), scaled to `rows` (pass
/// [`COVERTYPE_ROWS`] for the paper's size). Boolean values are Zipf(1.2)
/// distributed over each attribute's cardinality; preference values are
/// quantized to the real attributes' cardinalities and normalized to
/// `[0, 1)`.
pub fn covertype_surrogate(rows: usize, seed: u64) -> Relation {
    let bool_names: Vec<String> = (0..12).map(|i| format!("B{i}")).collect();
    let schema = Schema::new(
        &bool_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &["elevation", "horiz_dist", "vert_dist"],
    );
    let mut relation = Relation::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipfs: Vec<Zipf> =
        COVERTYPE_BOOL_CARDINALITIES.iter().map(|&c| Zipf::new(c, 1.2)).collect();
    let mut bool_codes = vec![0u32; 12];
    let mut coords = vec![0f64; 3];
    for _ in 0..rows {
        for (c, z) in bool_codes.iter_mut().zip(&zipfs) {
            *c = z.sample(&mut rng);
        }
        for (d, &card) in COVERTYPE_PREF_CARDINALITIES.iter().enumerate() {
            // Mildly bell-shaped quantitative attributes, quantized.
            let raw = (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0;
            let q = (raw * f64::from(card)).floor().min(f64::from(card - 1));
            coords[d] = q / f64::from(card);
        }
        relation.push_coded(&bool_codes, &coords);
    }
    relation
}

/// A Zipf(s) sampler over `0..n` by inverse-CDF table lookup.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` categories with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "need at least one category");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / f64::from(k).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws one category code.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

/// Samples a selection with `n_predicates` on distinct random boolean
/// dimensions, taking the values from a random existing row — so the
/// selection always matches at least one tuple.
pub fn sample_selection(relation: &Relation, n_predicates: usize, rng: &mut StdRng) -> Selection {
    assert!(!relation.is_empty(), "cannot sample from an empty relation");
    let n_bool = relation.schema().n_bool();
    assert!(n_predicates <= n_bool, "more predicates than boolean dimensions");
    let tid = rng.gen_range(0..relation.len() as u64);
    let mut dims: Vec<usize> = (0..n_bool).collect();
    for i in 0..n_predicates {
        let j = rng.gen_range(i..dims.len());
        dims.swap(i, j);
    }
    dims[..n_predicates]
        .iter()
        .map(|&dim| Predicate { dim, value: relation.bool_code(tid, dim) })
        .collect()
}

/// A random positive linear function `Σ aᵢ·xᵢ`, `aᵢ ∈ (0, 1]` — the ranking
/// function family of Fig 13.
pub fn sample_linear_weights(n_dims: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n_dims).map(|_| 1.0 - rng.gen::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_respects_spec() {
        let spec = SyntheticSpec {
            n_tuples: 2000,
            n_bool: 4,
            n_pref: 2,
            cardinality: 10,
            distribution: Distribution::Uniform,
            seed: 7,
        };
        let r = synthetic(&spec);
        assert_eq!(r.len(), 2000);
        assert_eq!(r.schema().n_bool(), 4);
        assert_eq!(r.schema().n_pref(), 2);
        for tid in 0..2000u64 {
            for d in 0..4 {
                assert!(r.bool_code(tid, d) < 10);
            }
            for c in r.pref_coords(tid) {
                assert!((0.0..1.0).contains(&c));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticSpec { n_tuples: 500, ..Default::default() };
        let a = synthetic(&spec);
        let b = synthetic(&spec);
        for tid in 0..500u64 {
            assert_eq!(a.pref_coords(tid), b.pref_coords(tid));
            assert_eq!(a.bool_code(tid, 0), b.bool_code(tid, 0));
        }
        let c = synthetic(&SyntheticSpec { seed: 43, ..spec });
        assert_ne!(a.pref_coords(0), c.pref_coords(0));
    }

    #[test]
    fn distributions_have_expected_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 5000;
        let mut spread = |dist: Distribution| {
            let mut total = 0.0;
            for _ in 0..n {
                let mut v = [0.0; 3];
                sample_pref(&mut rng, dist, &mut v);
                let mean = (v[0] + v[1] + v[2]) / 3.0;
                let var: f64 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 3.0;
                total += var;
            }
            total / n as f64
        };
        let corr = spread(Distribution::Correlated);
        let unif = spread(Distribution::Uniform);
        let anti = spread(Distribution::AntiCorrelated);
        // Correlated points hug the diagonal (small within-point variance);
        // anti-correlated points spread across it (large variance).
        assert!(corr < unif, "correlated {corr} vs uniform {unif}");
        assert!(anti > unif * 0.9, "anti {anti} vs uniform {unif}");
    }

    #[test]
    fn anticorrelated_sums_concentrate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sums = Vec::new();
        for _ in 0..2000 {
            let mut v = [0.0; 2];
            sample_pref(&mut rng, Distribution::AntiCorrelated, &mut v);
            sums.push(v[0] + v[1]);
        }
        let mean: f64 = sums.iter().sum::<f64>() / sums.len() as f64;
        let var: f64 =
            sums.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sums.len() as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean sum {mean}");
        // Sum of two independent uniforms has variance 1/6 ≈ 0.167.
        assert!(var < 0.05, "sum variance {var} should be far below independent");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            let v = z.sample(&mut rng);
            counts[v as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > 0);
        assert!(counts[0] as f64 > 20_000.0 * 0.1, "head should be heavy");
    }

    #[test]
    fn covertype_surrogate_matches_advertised_shape() {
        let r = covertype_surrogate(5000, 9);
        assert_eq!(r.len(), 5000);
        assert_eq!(r.schema().n_bool(), 12);
        assert_eq!(r.schema().n_pref(), 3);
        for tid in (0..5000u64).step_by(97) {
            for (d, &card) in COVERTYPE_BOOL_CARDINALITIES.iter().enumerate() {
                assert!(r.bool_code(tid, d) < card);
            }
        }
        // Binary dimensions really use both values.
        let mut seen = std::collections::HashSet::new();
        for tid in 0..5000u64 {
            seen.insert(r.bool_code(tid, 5));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn sampled_selections_match_at_least_one_row() {
        let r = synthetic(&SyntheticSpec { n_tuples: 300, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(5);
        for n_preds in 0..=3 {
            let sel = sample_selection(&r, n_preds, &mut rng);
            assert_eq!(sel.len(), n_preds);
            let hits = (0..r.len() as u64).filter(|&t| r.matches(t, &sel)).count();
            assert!(hits >= 1, "selection {sel:?} matches nothing");
            // Distinct dimensions.
            let mut dims: Vec<usize> = sel.iter().map(|p| p.dim).collect();
            dims.sort_unstable();
            dims.dedup();
            assert_eq!(dims.len(), n_preds);
        }
    }

    #[test]
    fn linear_weights_are_positive() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = sample_linear_weights(5, &mut rng);
        assert_eq!(w.len(), 5);
        assert!(w.iter().all(|&x| x > 0.0 && x <= 1.0));
    }
}
