//! Property tests for the slotted R*-tree: structural invariants, content
//! preservation, and — most importantly for P-Cube — exactness of the
//! tracked path deltas under arbitrary insert/delete interleavings.
//!
//! Runs are fully reproducible: the vendored proptest derives its RNG seed
//! deterministically from the test's module path and name (override with
//! `PROPTEST_SEED`), so every CI run replays the identical case sequence.

use pcube_rtree::{Path, RTree, RTreeConfig};
use pcube_storage::{IoCategory, IoStats, Pager};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_point(dims: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, dims..=dims)
}

fn tree(dims: usize, m_min: usize, m_max: usize) -> RTree {
    let pager = Pager::new(1024, IoCategory::RtreeBlock, IoStats::new_shared());
    RTree::new(pager, RTreeConfig::explicit(dims, m_min, m_max))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn inserts_preserve_invariants_and_content(points in prop::collection::vec(arb_point(2), 1..150)) {
        let mut t = tree(2, 1, 3);
        for (tid, p) in points.iter().enumerate() {
            t.insert(tid as u64, p);
        }
        t.check_invariants();
        prop_assert_eq!(t.len(), points.len() as u64);
        let mut seen: Vec<(u64, Vec<f64>)> = Vec::new();
        t.for_each_tuple(|tid, _, coords| seen.push((tid, coords.to_vec())));
        seen.sort_by_key(|(tid, _)| *tid);
        for (tid, coords) in &seen {
            prop_assert_eq!(coords, &points[*tid as usize]);
        }
        prop_assert_eq!(seen.len(), points.len());
    }

    #[test]
    fn tracked_deltas_equal_brute_force_diff(
        points in prop::collection::vec(arb_point(2), 1..120),
        m_max in 2usize..6,
    ) {
        let mut t = tree(2, 1, m_max);
        for (tid, p) in points.iter().enumerate() {
            let before: HashMap<u64, Path> = t.tuple_paths().into_iter().collect();
            let delta = t.insert_tracked(tid as u64, p);
            let after: HashMap<u64, Path> = t.tuple_paths().into_iter().collect();

            let (itid, ipath) = delta.inserted.clone().expect("insert reported");
            prop_assert_eq!(itid, tid as u64);
            prop_assert_eq!(&after[&itid], &ipath);

            let mut expect: Vec<(u64, Path, Path)> = before
                .iter()
                .filter(|(t0, old)| &after[t0] != *old)
                .map(|(t0, old)| (*t0, old.clone(), after[t0].clone()))
                .collect();
            expect.sort_by_key(|(t0, _, _)| *t0);
            let mut got = delta.moved.clone();
            got.sort_by_key(|(t0, _, _)| *t0);
            prop_assert_eq!(got, expect);
        }
        t.check_invariants();
    }

    #[test]
    fn deletes_move_nothing_else(
        points in prop::collection::vec(arb_point(3), 2..100),
        victims in prop::collection::vec(any::<prop::sample::Index>(), 1..20),
    ) {
        let mut t = tree(3, 1, 4);
        for (tid, p) in points.iter().enumerate() {
            t.insert(tid as u64, p);
        }
        let mut alive: Vec<u64> = (0..points.len() as u64).collect();
        for victim in victims {
            if alive.is_empty() {
                break;
            }
            let idx = victim.index(alive.len());
            let tid = alive.swap_remove(idx);
            let before: HashMap<u64, Path> = t.tuple_paths().into_iter().collect();
            let path = t.delete_tracked(tid, &points[tid as usize]).expect("present");
            prop_assert_eq!(&before[&tid], &path);
            let after: HashMap<u64, Path> = t.tuple_paths().into_iter().collect();
            prop_assert_eq!(after.len(), alive.len());
            for (t0, p0) in &after {
                prop_assert_eq!(p0, &before[t0], "stable slots on delete");
            }
            t.check_invariants();
        }
    }

    #[test]
    fn bulk_load_holds_everything(
        points in prop::collection::vec(arb_point(2), 0..300),
        fill in 0.4f64..=1.0,
    ) {
        let items: Vec<(u64, Vec<f64>)> =
            points.iter().enumerate().map(|(i, p)| (i as u64, p.clone())).collect();
        let pager = Pager::new(1024, IoCategory::RtreeBlock, IoStats::new_shared());
        let t = RTree::bulk_load(pager, RTreeConfig::for_page(2, 1024), items, fill);
        t.check_invariants();
        prop_assert_eq!(t.len(), points.len() as u64);
        let mut tids: Vec<u64> = t.tuple_paths().into_iter().map(|(tid, _)| tid).collect();
        tids.sort_unstable();
        prop_assert_eq!(tids, (0..points.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn paths_map_to_unique_sids(points in prop::collection::vec(arb_point(2), 1..200)) {
        let mut t = tree(2, 1, 3);
        for (tid, p) in points.iter().enumerate() {
            t.insert(tid as u64, p);
        }
        let mut sids = std::collections::HashSet::new();
        for (_, path) in t.tuple_paths() {
            prop_assert!(sids.insert(path.sid(t.m_max())), "duplicate SID for {}", path);
        }
    }
}
