//! The R* topological split (Beckmann et al., SIGMOD 1990).
//!
//! Given the `M+1` entries of an overflowing node, choose a split axis by
//! minimizing the total margin over all candidate distributions, then choose
//! the distribution on that axis minimizing overlap (ties by combined area).

use crate::geom::Mbr;
use crate::node::DecodedEntry;

/// Partitions `entries` (by index) into two groups, each of size at least
/// `m_min`.
///
/// # Panics
/// Panics if `entries.len() < 2 * m_min` (no legal distribution exists).
pub fn rstar_split(entries: &[DecodedEntry], dims: usize, m_min: usize) -> (Vec<usize>, Vec<usize>) {
    let n = entries.len();
    assert!(n >= 2 * m_min, "cannot split {n} entries with minimum fill {m_min}");
    let mbrs: Vec<Mbr> = entries.iter().map(DecodedEntry::mbr).collect();

    // For each axis, two sort orders: by lower coordinate, by upper coordinate.
    let order_by = |key: &dyn Fn(usize) -> f64| {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal));
        idx
    };

    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut axis_orders: Vec<[Vec<usize>; 2]> = Vec::with_capacity(dims);
    for d in 0..dims {
        let by_min = order_by(&|i| mbrs[i].min[d]);
        let by_max = order_by(&|i| mbrs[i].max[d]);
        let mut margin_sum = 0.0;
        for order in [&by_min, &by_max] {
            for k in m_min..=n - m_min {
                let (g1, g2) = group_mbrs(order, &mbrs, k, dims);
                margin_sum += g1.margin() + g2.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = d;
        }
        axis_orders.push([by_min, by_max]);
    }

    // On the chosen axis, pick the distribution with minimal overlap.
    let mut best: Option<(f64, f64, &Vec<usize>, usize)> = None;
    for order in &axis_orders[best_axis] {
        for k in m_min..=n - m_min {
            let (g1, g2) = group_mbrs(order, &mbrs, k, dims);
            let overlap = g1.overlap(&g2);
            let area = g1.area() + g2.area();
            let better = match best {
                None => true,
                Some((bo, ba, _, _)) => overlap < bo || (overlap == bo && area < ba),
            };
            if better {
                best = Some((overlap, area, order, k));
            }
        }
    }
    let (_, _, order, k) = best.expect("at least one distribution");
    (order[..k].to_vec(), order[k..].to_vec())
}

fn group_mbrs(order: &[usize], mbrs: &[Mbr], k: usize, dims: usize) -> (Mbr, Mbr) {
    let mut g1 = Mbr::empty(dims);
    for &i in &order[..k] {
        g1.expand(&mbrs[i]);
    }
    let mut g2 = Mbr::empty(dims);
    for &i in &order[k..] {
        g2.expand(&mbrs[i]);
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(coords: &[f64]) -> DecodedEntry {
        DecodedEntry::Tuple { tid: 0, coords: coords.to_vec() }
    }

    #[test]
    fn separates_two_obvious_clusters() {
        // Four points near the origin, four near (10, 10).
        let mut entries = Vec::new();
        for i in 0..4 {
            entries.push(tuple(&[0.1 * i as f64, 0.1 * i as f64]));
        }
        for i in 0..4 {
            entries.push(tuple(&[10.0 + 0.1 * i as f64, 10.0 + 0.1 * i as f64]));
        }
        let (a, b) = rstar_split(&entries, 2, 2);
        assert_eq!(a.len() + b.len(), 8);
        let low: Vec<usize> = (0..4).collect();
        let mut a_sorted = a.clone();
        a_sorted.sort_unstable();
        let mut b_sorted = b.clone();
        b_sorted.sort_unstable();
        assert!(
            a_sorted == low || b_sorted == low,
            "split should isolate the low cluster: {a_sorted:?} / {b_sorted:?}"
        );
    }

    #[test]
    fn respects_minimum_fill() {
        let entries: Vec<DecodedEntry> = (0..7).map(|i| tuple(&[i as f64, 0.0])).collect();
        let (a, b) = rstar_split(&entries, 2, 3);
        assert!(a.len() >= 3 && b.len() >= 3, "groups {} / {}", a.len(), b.len());
        let mut all: Vec<usize> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn splits_identical_points_legally() {
        let entries: Vec<DecodedEntry> = (0..6).map(|_| tuple(&[0.5, 0.5])).collect();
        let (a, b) = rstar_split(&entries, 2, 2);
        assert!(a.len() >= 2 && b.len() >= 2);
        assert_eq!(a.len() + b.len(), 6);
    }

    #[test]
    fn chooses_the_discriminating_axis() {
        // Spread on Y only; a good split must cut along Y, giving zero overlap.
        let entries: Vec<DecodedEntry> =
            (0..8).map(|i| tuple(&[0.5, i as f64])).collect();
        let (a, b) = rstar_split(&entries, 2, 2);
        // One group must sit entirely below the other in Y (= index) order.
        let a_max = a.iter().copied().max().unwrap();
        let a_min = a.iter().copied().min().unwrap();
        let b_max = b.iter().copied().max().unwrap();
        let b_min = b.iter().copied().min().unwrap();
        assert!(a_max < b_min || b_max < a_min, "groups overlap on Y: {a:?} / {b:?}");
    }

    #[test]
    fn minimal_legal_input_splits() {
        let entries = vec![tuple(&[0.0, 0.0]), tuple(&[1.0, 1.0])];
        let (a, b) = rstar_split(&entries, 2, 1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic]
    fn too_few_entries_panics() {
        let entries = vec![tuple(&[0.0, 0.0])];
        let _ = rstar_split(&entries, 2, 1);
    }
}
