//! The R-tree proper: construction, mutation (with path tracking) and node
//! access for the query processors.

use pcube_storage::{PageId, Pager};

use crate::geom::Mbr;
use crate::node::{self, DecodedEntry, DecodedNode, Layout};
use crate::path::Path;
use crate::split::rstar_split;

/// Structural parameters of an R-tree.
#[derive(Debug, Clone, Copy)]
pub struct RTreeConfig {
    /// Number of preference dimensions indexed.
    pub dims: usize,
    /// Maximum entries per node (`M` in the paper; also the signature
    /// bit-array length per node).
    pub m_max: usize,
    /// Minimum entries per node after a split (`m`).
    pub m_min: usize,
}

impl RTreeConfig {
    /// Derives the largest fanout that fits `page_size`, with the R* default
    /// minimum fill of 40 %.
    pub fn for_page(dims: usize, page_size: usize) -> Self {
        let m_max = Layout::max_capacity(dims, page_size);
        RTreeConfig { dims, m_max, m_min: (m_max * 2 / 5).max(1) }
    }

    /// Explicit fanout, e.g. the paper's worked example uses `m = 1, M = 2`.
    ///
    /// # Panics
    /// Panics unless `1 <= m_min <= m_max / 2` and `m_max >= 2`.
    pub fn explicit(dims: usize, m_min: usize, m_max: usize) -> Self {
        assert!(m_max >= 2, "M must be at least 2");
        assert!(m_min >= 1 && 2 * m_min <= m_max + 1, "need 1 <= m <= (M+1)/2");
        RTreeConfig { dims, m_max, m_min }
    }
}

/// Which tuple paths an insert or delete changed; the input to incremental
/// signature maintenance (§IV-B.3).
#[derive(Debug, Clone, Default)]
pub struct PathDelta {
    /// The newly inserted tuple and its path.
    pub inserted: Option<(u64, Path)>,
    /// The deleted tuple and the path it had.
    pub removed: Option<(u64, Path)>,
    /// Tuples relocated by node splits: `(tid, old path, new path)`.
    pub moved: Vec<(u64, Path, Path)>,
}

struct Step {
    pid: PageId,
    /// Slot of this node inside its parent (`usize::MAX` for the root).
    slot_in_parent: usize,
    /// Whether the node had no free slot when the descent visited it.
    full: bool,
}

/// A paged R-tree over points in `dims` dimensions. See the crate docs for
/// why slots are stable and how paths work.
///
/// `Clone` is a deep copy over a cloned pager (sharing the I/O ledger);
/// epoch snapshots in `pcube-core` use it to publish immutable copies.
#[derive(Clone)]
pub struct RTree {
    pager: Pager,
    layout: Layout,
    config: RTreeConfig,
    root: PageId,
    height: usize,
    len: u64,
}

impl RTree {
    /// Creates an empty tree (a single empty leaf as root).
    pub fn new(mut pager: Pager, config: RTreeConfig) -> Self {
        let layout = Layout::new(config.dims, config.m_max, pager.page_size());
        let root = pager.allocate();
        let mut page = vec![0u8; pager.page_size()];
        node::init_node(&mut page, true);
        pager.write(root, &page);
        RTree { pager, layout, config, root, height: 1, len: 0 }
    }

    /// Bulk loads with Sort-Tile-Recursive packing, filling each node to
    /// `fill · M` entries (use `1.0` for a read-mostly tree, lower to leave
    /// slack for subsequent inserts).
    ///
    /// # Panics
    /// Panics if `fill` is out of `(0, 1]` or any point has the wrong
    /// dimensionality.
    pub fn bulk_load(
        mut pager: Pager,
        config: RTreeConfig,
        items: Vec<(u64, Vec<f64>)>,
        fill: f64,
    ) -> Self {
        assert!(fill > 0.0 && fill <= 1.0, "fill factor must be in (0,1]");
        let layout = Layout::new(config.dims, config.m_max, pager.page_size());
        let cap = ((config.m_max as f64 * fill) as usize).clamp(config.m_min.max(1), config.m_max);
        for (_, coords) in &items {
            assert_eq!(coords.len(), config.dims, "point dimensionality mismatch");
        }
        if items.is_empty() {
            return RTree::new(pager, config);
        }
        let len = items.len() as u64;

        // Pack the leaf level.
        let mut order: Vec<usize> = (0..items.len()).collect();
        str_order(&mut order, &|i, d| items[i].1[d], config.dims, cap);
        let mut level: Vec<(PageId, Mbr)> = Vec::new();
        let mut page = vec![0u8; pager.page_size()];
        for chunk in order.chunks(cap) {
            node::init_node(&mut page, true);
            let mut mbr = Mbr::empty(config.dims);
            for (slot, &i) in chunk.iter().enumerate() {
                node::write_leaf_entry(&mut page, &layout, slot, items[i].0, &items[i].1);
                mbr.expand_point(&items[i].1);
            }
            let pid = pager.allocate();
            pager.write(pid, &page);
            level.push((pid, mbr));
        }

        // Pack internal levels until a single root remains.
        let mut height = 1usize;
        while level.len() > 1 {
            height += 1;
            let centers: Vec<Vec<f64>> = level
                .iter()
                .map(|(_, m)| (0..config.dims).map(|d| (m.min[d] + m.max[d]) / 2.0).collect())
                .collect();
            let mut order: Vec<usize> = (0..level.len()).collect();
            str_order(&mut order, &|i, d| centers[i][d], config.dims, cap);
            let mut upper: Vec<(PageId, Mbr)> = Vec::new();
            for chunk in order.chunks(cap) {
                node::init_node(&mut page, false);
                let mut mbr = Mbr::empty(config.dims);
                for (slot, &i) in chunk.iter().enumerate() {
                    node::write_internal_entry(&mut page, &layout, slot, level[i].0, &level[i].1);
                    mbr.expand(&level[i].1);
                }
                let pid = pager.allocate();
                pager.write(pid, &page);
                upper.push((pid, mbr));
            }
            level = upper;
        }
        // invariant: the while-loop above only exits with level.len() == 1,
        // and the empty-input case returned earlier.
        let root = level[0].0;
        RTree { pager, layout, config, root, height, len }
    }

    /// Structural metadata needed to re-open the tree over a deserialized
    /// pager: `(root page, height, tuple count)`.
    pub fn parts(&self) -> (PageId, usize, u64) {
        (self.root, self.height, self.len)
    }

    /// Re-opens a tree over a pager that already holds its pages (the
    /// counterpart of [`RTree::parts`] after pager deserialization).
    pub fn from_parts(
        pager: Pager,
        config: RTreeConfig,
        root: PageId,
        height: usize,
        len: u64,
    ) -> Self {
        let layout = Layout::new(config.dims, config.m_max, pager.page_size());
        RTree { pager, layout, config, root, height, len }
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of preference dimensions.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// Maximum entries per node — the `M` used for signature bit arrays and
    /// SID computation.
    pub fn m_max(&self) -> usize {
        self.config.m_max
    }

    /// Minimum entries per node after a split (`m`).
    pub fn m_min(&self) -> usize {
        self.config.m_min
    }

    /// The root node's page.
    pub fn root_pid(&self) -> PageId {
        self.root
    }

    /// The pager holding this tree's nodes.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Mutable access to the backing pager — the hook chaos tests use to
    /// install fault plans or corrupt pages underneath the tree.
    pub fn pager_mut(&mut self) -> &mut Pager {
        &mut self.pager
    }

    /// Reads and decodes a node, charging one R-tree block retrieval.
    ///
    /// Infallible [`RTree::try_read_node`]; panics where that errors.
    #[inline]
    pub fn read_node(&self, pid: PageId) -> DecodedNode {
        self.try_read_node(pid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`RTree::read_node`]: dead pages, injected faults and
    /// checksum mismatches surface as [`pcube_storage::StorageError`].
    pub fn try_read_node(&self, pid: PageId) -> Result<DecodedNode, pcube_storage::StorageError> {
        Ok(node::decode(self.pager.try_read(pid)?, &self.layout))
    }

    /// Reads and decodes a node without charging I/O (for rebuild passes and
    /// invariant checks, not query processing).
    pub fn read_node_uncounted(&self, pid: PageId) -> DecodedNode {
        node::decode(self.pager.read_uncounted(pid), &self.layout)
    }

    /// Visits every tuple with its path, in depth-first slot order.
    ///
    /// Reads are uncounted: callers that want construction I/O measured
    /// (e.g. signature generation) account for it at their own layer via the
    /// number of nodes, available as [`RTree::count_nodes`].
    pub fn for_each_tuple(&self, mut f: impl FnMut(u64, &Path, &[f64])) {
        self.visit(self.root, &Path::root(), &mut f);
    }

    fn visit(&self, pid: PageId, prefix: &Path, f: &mut impl FnMut(u64, &Path, &[f64])) {
        let n = self.read_node_uncounted(pid);
        for (slot, entry) in &n.entries {
            let child_path = prefix.child(*slot as u16 + 1);
            match entry {
                DecodedEntry::Tuple { tid, coords } => f(*tid, &child_path, coords),
                DecodedEntry::Child { child, .. } => self.visit(*child, &child_path, f),
            }
        }
    }

    /// All `(tid, path)` pairs — the paper's `path` column of Table I.
    pub fn tuple_paths(&self) -> Vec<(u64, Path)> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.for_each_tuple(|tid, path, _| out.push((tid, path.clone())));
        out
    }

    /// Total number of nodes (counted without charging I/O).
    pub fn count_nodes(&self) -> usize {
        fn rec(tree: &RTree, pid: PageId) -> usize {
            let n = tree.read_node_uncounted(pid);
            1 + n
                .entries
                .iter()
                .map(|(_, e)| match e {
                    DecodedEntry::Child { child, .. } => rec(tree, *child),
                    DecodedEntry::Tuple { .. } => 0,
                })
                .sum::<usize>()
        }
        rec(self, self.root)
    }

    /// Inserts a tuple without path tracking.
    pub fn insert(&mut self, tid: u64, coords: &[f64]) {
        let _ = self.insert_inner(tid, coords, false);
    }

    /// Inserts a tuple and reports every path change, for signature
    /// maintenance. In the common non-split case the delta contains only the
    /// inserted path; when nodes split, the affected subtree is traversed
    /// before and after (the paper's method) to produce old → new pairs.
    pub fn insert_tracked(&mut self, tid: u64, coords: &[f64]) -> PathDelta {
        self.insert_inner(tid, coords, true)
    }

    fn insert_inner(&mut self, tid: u64, coords: &[f64], tracked: bool) -> PathDelta {
        assert_eq!(coords.len(), self.config.dims, "point dimensionality mismatch");
        let steps = self.choose_path(coords);
        // invariant: choose_path walks root→leaf over height ≥ 1 levels, so
        // it always returns at least the root step.
        let leaf = steps.last().expect("descent reaches a leaf");
        let leaf_page = self.pager.read(leaf.pid).to_vec();

        if let Some(slot) = node::first_free_slot(&leaf_page, &self.layout) {
            // Simple case: "only the path of the newly inserted tuple is
            // updated, and those for other tuples keep the same."
            let mut page = leaf_page;
            node::write_leaf_entry(&mut page, &self.layout, slot, tid, coords);
            self.pager.write(leaf.pid, &page);
            self.fix_mbrs_along(&steps);
            self.len += 1;
            let path = Self::steps_to_path(&steps).child(slot as u16 + 1);
            return PathDelta { inserted: Some((tid, path)), ..Default::default() };
        }

        // Split cascade. `j` = index of the highest node that must split
        // (all of steps[j..] are full).
        let mut j = steps.len();
        while j > 0 && steps[j - 1].full {
            j -= 1;
        }

        // Collect old paths under the subtree that will be restructured.
        let (old_paths, scope_prefix, scope_pid) = if !tracked {
            (Vec::new(), Path::root(), self.root)
        } else if j == 0 {
            // Root splits: every path gains a level; diff the whole tree.
            (self.tuple_paths(), Path::root(), self.root)
        } else {
            let prefix = Self::steps_to_path(&steps[..=j]);
            let pid = steps[j].pid;
            let mut old = Vec::new();
            self.collect_paths(pid, &prefix, &mut old);
            (old, prefix, pid)
        };

        let top_new = self.split_cascade(&steps, j, DecodedEntry::Tuple { tid, coords: coords.to_vec() });
        self.len += 1;

        if !tracked {
            return PathDelta::default();
        }

        // Collect new paths over the same scope plus the new sibling subtree.
        let mut new_paths = Vec::new();
        if j == 0 {
            self.collect_paths(self.root, &Path::root(), &mut new_paths);
        } else {
            self.collect_paths(scope_pid, &scope_prefix, &mut new_paths);
            // invariant: j > 0 means the split cascade stopped below the
            // root, and every non-root cascade level produced a sibling that
            // split_cascade recorded as top_new.
            let (y_pid, y_slot) = top_new.expect("non-root cascade yields a new sibling");
            let y_prefix = Self::steps_to_path(&steps[..j]).child(y_slot as u16 + 1);
            self.collect_paths(y_pid, &y_prefix, &mut new_paths);
        }

        let old_map: std::collections::HashMap<u64, Path> = old_paths.into_iter().collect();
        let mut delta = PathDelta::default();
        for (t, new_path) in new_paths {
            match old_map.get(&t) {
                None => {
                    debug_assert_eq!(t, tid, "only the inserted tuple can be new in scope");
                    delta.inserted = Some((t, new_path));
                }
                Some(old) if *old != new_path => delta.moved.push((t, old.clone(), new_path)),
                Some(_) => {}
            }
        }
        debug_assert!(delta.inserted.is_some());
        delta
    }

    /// Runs the split cascade from the leaf (last step) up to `steps[j]`,
    /// inserting `carry` at the bottom. Returns the page and parent slot of
    /// the top-most new sibling, or `None` if the root split.
    fn split_cascade(
        &mut self,
        steps: &[Step],
        j: usize,
        carry: DecodedEntry,
    ) -> Option<(PageId, usize)> {
        let mut carry = carry;
        let mut level = steps.len() - 1;
        loop {
            let x_pid = steps[level].pid;
            let x_page = self.pager.read(x_pid).to_vec();
            let decoded = node::decode(&x_page, &self.layout);
            let is_leaf = decoded.is_leaf;

            // All current entries plus the carried one.
            let mut slots: Vec<Option<usize>> = decoded.entries.iter().map(|(s, _)| Some(*s)).collect();
            let mut entries: Vec<DecodedEntry> =
                decoded.entries.into_iter().map(|(_, e)| e).collect();
            slots.push(None);
            entries.push(carry.clone());

            let (ga, gb) = rstar_split(&entries, self.config.dims, self.config.m_min);
            // The group with more original entries stays in place, so fewer
            // tuples change paths.
            let orig = |g: &[usize]| g.iter().filter(|&&i| slots[i].is_some()).count();
            let (stay, go) = if orig(&ga) >= orig(&gb) { (ga, gb) } else { (gb, ga) };

            // Rewrite X: clear moved slots, keep staying slots, place the
            // carry (if staying) into the first freed slot.
            let mut page = x_page;
            for &i in &go {
                if let Some(s) = slots[i] {
                    node::set_occupied(&mut page, s, false);
                }
            }
            if let Some(ci) = stay.iter().find(|&&i| slots[i].is_none()) {
                // invariant: the moving group is non-empty (m_min ≤ |move|),
                // and its slots were just vacated above, so at least one
                // free slot exists for the staying entry.
                let free = node::first_free_slot(&page, &self.layout)
                    .expect("split must free at least one slot");
                Self::write_entry(&mut page, &self.layout, free, &entries[*ci]);
            }
            self.pager.write(x_pid, &page);
            let x_mbr = node::decode(&page, &self.layout).mbr(self.config.dims);

            // Build the sibling Y with the moving group in fresh slots.
            let mut y_page = vec![0u8; self.pager.page_size()];
            node::init_node(&mut y_page, is_leaf);
            for (slot, &i) in go.iter().enumerate() {
                Self::write_entry(&mut y_page, &self.layout, slot, &entries[i]);
            }
            let y_pid = self.pager.allocate();
            self.pager.write(y_pid, &y_page);
            let y_mbr = node::decode(&y_page, &self.layout).mbr(self.config.dims);

            if level == 0 {
                // Root split: new root with X in slot 0 and Y in slot 1.
                let mut r_page = vec![0u8; self.pager.page_size()];
                node::init_node(&mut r_page, false);
                node::write_internal_entry(&mut r_page, &self.layout, 0, x_pid, &x_mbr);
                node::write_internal_entry(&mut r_page, &self.layout, 1, y_pid, &y_mbr);
                let new_root = self.pager.allocate();
                self.pager.write(new_root, &r_page);
                self.root = new_root;
                self.height += 1;
                return None;
            }

            // Update X's MBR in the parent; then place or carry Y.
            let parent_pid = steps[level - 1].pid;
            let x_slot = steps[level].slot_in_parent;
            let placed = self.pager.update(parent_pid, |p| {
                node::write_internal_entry(p, &self.layout, x_slot, x_pid, &x_mbr);
                if let Some(free) = node::first_free_slot(p, &self.layout) {
                    node::write_internal_entry(p, &self.layout, free, y_pid, &y_mbr);
                    Some(free)
                } else {
                    None
                }
            });
            match placed {
                Some(free) => {
                    debug_assert!(level > j.saturating_sub(1));
                    self.fix_mbrs_along(&steps[..level]);
                    return Some((y_pid, free));
                }
                None => {
                    debug_assert!(level > j, "cascade must stop at the non-full ancestor");
                    carry = DecodedEntry::Child { child: y_pid, mbr: y_mbr };
                    level -= 1;
                }
            }
        }
    }

    fn write_entry(page: &mut [u8], layout: &Layout, slot: usize, entry: &DecodedEntry) {
        match entry {
            DecodedEntry::Tuple { tid, coords } => {
                node::write_leaf_entry(page, layout, slot, *tid, coords)
            }
            DecodedEntry::Child { child, mbr } => {
                node::write_internal_entry(page, layout, slot, *child, mbr)
            }
        }
    }

    /// Deletes a tuple (located by its coordinates and tid). Returns the path
    /// it occupied, or `None` if absent. Stable slots mean no other tuple
    /// moves; an emptied node is unlinked from its parent recursively.
    pub fn delete_tracked(&mut self, tid: u64, coords: &[f64]) -> Option<Path> {
        let found = self.find_tuple(self.root, &Path::root(), tid, coords)?;
        let (leaf_steps, path) = found;
        // Clear the leaf slot.
        // invariant: find_tuple returned Some, so the path has one component
        // per level (≥ 1) and leaf_steps ends with the leaf's page id.
        let leaf_slot = *path.0.last().expect("path has one component per level") as usize - 1;
        let leaf_pid = *leaf_steps.last().expect("leaf_steps ends with the leaf's page id");
        self.pager.update(leaf_pid, |p| node::set_occupied(p, leaf_slot, false));
        // Unlink emptied nodes bottom-up (never the root).
        let mut freed = std::collections::HashSet::new();
        for i in (1..leaf_steps.len()).rev() {
            let pid = leaf_steps[i];
            let n = node::count_occupied(self.pager.read_uncounted(pid), &self.layout);
            if n > 0 {
                break;
            }
            let parent = leaf_steps[i - 1];
            let slot = path.0[i - 1] as usize - 1;
            self.pager.update(parent, |p| node::set_occupied(p, slot, false));
            self.pager.free(pid);
            freed.insert(pid);
        }
        // Recompute ancestor MBRs for the surviving nodes on the path.
        for i in (1..leaf_steps.len()).rev() {
            let child_pid = leaf_steps[i];
            if freed.contains(&child_pid) {
                continue;
            }
            let mbr =
                node::decode(self.pager.read_uncounted(child_pid), &self.layout).mbr(self.config.dims);
            let slot = path.0[i - 1] as usize - 1;
            self.pager.update(leaf_steps[i - 1], |p| {
                node::write_internal_entry(p, &self.layout, slot, child_pid, &mbr);
            });
        }
        self.len -= 1;
        // Single-child internal roots are deliberately NOT collapsed: doing
        // so would change every remaining tuple's path, defeating the point
        // of tracked deletion. Only a fully emptied tree resets to a fresh
        // leaf root (there are no paths left to invalidate).
        if self.len == 0 {
            let mut page = vec![0u8; self.pager.page_size()];
            node::init_node(&mut page, true);
            self.pager.write(self.root, &page);
            self.height = 1;
        }
        Some(path)
    }

    /// Deletes without reporting the path.
    pub fn delete(&mut self, tid: u64, coords: &[f64]) -> bool {
        self.delete_tracked(tid, coords).is_some()
    }

    fn find_tuple(
        &self,
        pid: PageId,
        prefix: &Path,
        tid: u64,
        coords: &[f64],
    ) -> Option<(Vec<PageId>, Path)> {
        let n = self.read_node_uncounted(pid);
        for (slot, entry) in &n.entries {
            match entry {
                DecodedEntry::Tuple { tid: t, coords: c } if *t == tid && c == coords => {
                    return Some((vec![pid], prefix.child(*slot as u16 + 1)));
                }
                DecodedEntry::Child { child, mbr } if mbr.contains_point(coords) => {
                    if let Some((mut pids, path)) =
                        self.find_tuple(*child, &prefix.child(*slot as u16 + 1), tid, coords)
                    {
                        pids.insert(0, pid);
                        return Some((pids, path));
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// R* choose-subtree descent; records pid, parent slot and fullness per
    /// level.
    fn choose_path(&self, coords: &[f64]) -> Vec<Step> {
        let mut steps = Vec::with_capacity(self.height);
        let mut pid = self.root;
        let mut slot_in_parent = usize::MAX;
        loop {
            let page = self.pager.read(pid);
            let full = node::first_free_slot(page, &self.layout).is_none();
            let decoded = node::decode(page, &self.layout);
            steps.push(Step { pid, slot_in_parent, full });
            if decoded.is_leaf {
                return steps;
            }
            let children_are_leaves = steps.len() == self.height - 1;
            let point = Mbr::point(coords);
            let mut best: Option<(usize, PageId, f64, f64, f64)> = None;
            for (slot, entry) in &decoded.entries {
                // invariant: this loop only runs above the leaf level
                // (steps.len() < height), where every entry is a child ref.
                let DecodedEntry::Child { child, mbr } = entry else { unreachable!() };
                // R*: minimize overlap enlargement at the leaf level, area
                // enlargement above; ties by area enlargement then area.
                let overlap_delta = if children_are_leaves {
                    let grown = mbr.union(&point);
                    decoded
                        .entries
                        .iter()
                        .filter(|(s, _)| s != slot)
                        .map(|(_, e)| {
                            let other = e.mbr();
                            grown.overlap(&other) - mbr.overlap(&other)
                        })
                        .sum::<f64>()
                } else {
                    0.0
                };
                let enlargement = mbr.enlargement(&point);
                let area = mbr.area();
                let better = match &best {
                    None => true,
                    Some((_, _, bo, be, ba)) => {
                        (overlap_delta, enlargement, area) < (*bo, *be, *ba)
                    }
                };
                if better {
                    best = Some((*slot, *child, overlap_delta, enlargement, area));
                }
            }
            // invariant: tree invariants guarantee every internal node holds
            // ≥ 1 entry (checked by check_invariants), so `best` was set.
            let (slot, child, ..) = best.expect("internal node has at least one child");
            pid = child;
            slot_in_parent = slot;
        }
    }

    /// Recomputes tight MBRs for the nodes on `steps`, bottom-up, writing
    /// each into its parent entry.
    fn fix_mbrs_along(&mut self, steps: &[Step]) {
        for i in (1..steps.len()).rev() {
            let child_pid = steps[i].pid;
            // Skip nodes that were freed by a delete.
            let mbr = {
                let page = self.pager.read_uncounted(steps[i - 1].pid);
                if !node::occupied(page, steps[i].slot_in_parent) {
                    continue;
                }
                node::decode(self.pager.read_uncounted(child_pid), &self.layout)
                    .mbr(self.config.dims)
            };
            let slot = steps[i].slot_in_parent;
            self.pager.update(steps[i - 1].pid, |p| {
                node::write_internal_entry(p, &self.layout, slot, child_pid, &mbr);
            });
        }
    }

    fn steps_to_path(steps: &[Step]) -> Path {
        // invariant: callers pass the full descent including the root step,
        // so steps is non-empty and `steps[1..]` cannot be out of bounds.
        Path(steps[1..].iter().map(|s| s.slot_in_parent as u16 + 1).collect())
    }

    fn collect_paths(&self, pid: PageId, prefix: &Path, out: &mut Vec<(u64, Path)>) {
        let n = self.read_node_uncounted(pid);
        for (slot, entry) in &n.entries {
            let p = prefix.child(*slot as u16 + 1);
            match entry {
                DecodedEntry::Tuple { tid, .. } => out.push((*tid, p)),
                DecodedEntry::Child { child, .. } => self.collect_paths(*child, &p, out),
            }
        }
    }

    /// Exhaustively checks structural invariants; for tests and debugging.
    ///
    /// Verifies: parent MBRs tightly contain children, node occupancy within
    /// `[m_min, m_max]` (root exempt from the minimum), uniform leaf depth,
    /// unique tids, and `len` consistency.
    pub fn check_invariants(&self) {
        let mut tids = std::collections::HashSet::new();
        let mut leaf_depths = std::collections::HashSet::new();
        self.check_node(self.root, 0, true, &mut tids, &mut leaf_depths);
        assert_eq!(tids.len() as u64, self.len, "len mismatch");
        assert!(leaf_depths.len() <= 1, "leaves at different depths: {leaf_depths:?}");
        if let Some(&d) = leaf_depths.iter().next() {
            assert_eq!(d + 1, self.height, "height mismatch");
        }
    }

    fn check_node(
        &self,
        pid: PageId,
        depth: usize,
        is_root: bool,
        tids: &mut std::collections::HashSet<u64>,
        leaf_depths: &mut std::collections::HashSet<usize>,
    ) -> Mbr {
        let n = self.read_node_uncounted(pid);
        let count = n.entries.len();
        assert!(count <= self.config.m_max, "node {pid} over capacity");
        if !is_root && !n.is_leaf {
            // Internal nodes get entries only via splits, so the R* minimum
            // holds; leaves may underflow after deletes (relaxed deletion).
            assert!(count >= 1, "non-root internal node {pid} is empty");
        }
        if n.is_leaf {
            leaf_depths.insert(depth);
        }
        let mut mbr = Mbr::empty(self.config.dims);
        for (_, entry) in &n.entries {
            match entry {
                DecodedEntry::Tuple { tid, coords } => {
                    assert!(tids.insert(*tid), "duplicate tid {tid}");
                    mbr.expand_point(coords);
                }
                DecodedEntry::Child { child, mbr: stored } => {
                    let actual = self.check_node(*child, depth + 1, false, tids, leaf_depths);
                    assert!(
                        stored.contains(&actual),
                        "parent MBR {stored:?} does not contain child {actual:?}"
                    );
                    mbr.expand(stored);
                }
            }
        }
        mbr
    }
}

/// Orders `idx` by Sort-Tile-Recursive tiling so that consecutive runs of
/// `cap` indices form spatially coherent nodes.
fn str_order(idx: &mut [usize], coord: &dyn Fn(usize, usize) -> f64, dims: usize, cap: usize) {
    fn rec(idx: &mut [usize], coord: &dyn Fn(usize, usize) -> f64, d: usize, dims: usize, cap: usize) {
        // total_cmp keeps the sort total even if NaN coordinates sneak in
        // (they would previously collapse to Equal and scramble the order).
        idx.sort_by(|&a, &b| coord(a, d).total_cmp(&coord(b, d)));
        if d + 1 == dims {
            return;
        }
        let n = idx.len();
        let n_nodes = n.div_ceil(cap);
        let remaining = dims - d;
        let slabs = (n_nodes as f64).powf(1.0 / remaining as f64).ceil() as usize;
        let slab_len = n.div_ceil(slabs.max(1));
        if slab_len == 0 || slab_len >= n {
            rec(idx, coord, d + 1, dims, cap);
            return;
        }
        let mut start = 0;
        while start < n {
            let end = (start + slab_len).min(n);
            rec(&mut idx[start..end], coord, d + 1, dims, cap);
            start = end;
        }
    }
    rec(idx, coord, 0, dims, cap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_storage::{IoCategory, IoStats, SharedStats};
    use std::collections::HashMap;

    fn pager(page_size: usize) -> (Pager, SharedStats) {
        let stats = IoStats::new_shared();
        (Pager::new(page_size, IoCategory::RtreeBlock, stats.clone()), stats)
    }

    fn grid_points(n: usize) -> Vec<(u64, Vec<f64>)> {
        // Deterministic scattered points via a Weyl-like sequence.
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.754_877_666) % 1.0;
                let y = (i as f64 * 0.569_840_290) % 1.0;
                (i as u64, vec![x, y])
            })
            .collect()
    }

    #[test]
    fn paper_sample_database_tree_shape() {
        // Table I / Fig 1: 8 tuples, m = 1, M = 2 — three levels, and the
        // paths must be exactly the paper's `path` column when bulk-loaded
        // in the paper's layout.
        let (p, _) = pager(512);
        let cfg = RTreeConfig::explicit(2, 1, 2);
        let pts: Vec<(u64, Vec<f64>)> = vec![
            (1, vec![0.00, 0.40]),
            (2, vec![0.20, 0.60]),
            (3, vec![0.30, 0.70]),
            (4, vec![0.50, 0.40]),
            (5, vec![0.60, 0.00]),
            (6, vec![0.72, 0.30]),
            (7, vec![0.72, 0.36]),
            (8, vec![0.85, 0.62]),
        ];
        let tree = RTree::bulk_load(p, cfg, pts, 1.0);
        tree.check_invariants();
        assert_eq!(tree.len(), 8);
        assert_eq!(tree.height(), 3);
        let paths: HashMap<u64, Path> = tree.tuple_paths().into_iter().collect();
        // Every tuple has a depth-3 path with positions in 1..=2.
        for tid in 1..=8u64 {
            let p = &paths[&tid];
            assert_eq!(p.depth(), 3, "tid {tid} path {p}");
            assert!(p.0.iter().all(|&x| (1..=2).contains(&x)));
        }
        // All eight paths are distinct (a full binary tree of depth 3).
        let unique: std::collections::HashSet<_> = paths.values().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn bulk_load_then_check_invariants_various_sizes() {
        for n in [0usize, 1, 5, 50, 500] {
            let (p, _) = pager(512);
            let cfg = RTreeConfig::for_page(2, 512);
            let tree = RTree::bulk_load(p, cfg, grid_points(n), 1.0);
            tree.check_invariants();
            assert_eq!(tree.len(), n as u64);
            assert_eq!(tree.tuple_paths().len(), n);
        }
    }

    #[test]
    fn insert_one_by_one_matches_bulk_contents() {
        let (p, _) = pager(512);
        let cfg = RTreeConfig::explicit(2, 2, 5);
        let mut tree = RTree::new(p, cfg);
        let pts = grid_points(300);
        for (tid, coords) in &pts {
            tree.insert(*tid, coords);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 300);
        let mut seen: Vec<u64> = Vec::new();
        tree.for_each_tuple(|tid, path, coords| {
            seen.push(tid);
            assert_eq!(coords, &pts[tid as usize].1[..]);
            assert!(path.depth() >= 1);
        });
        seen.sort_unstable();
        assert_eq!(seen, (0..300u64).collect::<Vec<_>>());
    }

    #[test]
    fn tracked_insert_without_split_reports_only_new_path() {
        let (p, _) = pager(512);
        let cfg = RTreeConfig::explicit(2, 1, 4);
        let mut tree = RTree::new(p, cfg);
        let delta = tree.insert_tracked(7, &[0.5, 0.5]);
        assert!(delta.moved.is_empty());
        let (tid, path) = delta.inserted.unwrap();
        assert_eq!(tid, 7);
        assert_eq!(path, Path(vec![1]));
        // Second insert into the same leaf takes the next free slot.
        let delta = tree.insert_tracked(8, &[0.6, 0.6]);
        assert!(delta.moved.is_empty());
        assert_eq!(delta.inserted.unwrap().1, Path(vec![2]));
    }

    #[test]
    fn tracked_insert_deltas_always_match_full_diff() {
        // The gold standard: replay inserts, comparing the reported delta
        // with a brute-force before/after diff of all tuple paths.
        let (p, _) = pager(512);
        let cfg = RTreeConfig::explicit(2, 1, 3);
        let mut tree = RTree::new(p, cfg);
        let pts = grid_points(120);
        for (tid, coords) in &pts {
            let before: HashMap<u64, Path> = tree.tuple_paths().into_iter().collect();
            let delta = tree.insert_tracked(*tid, coords);
            let after: HashMap<u64, Path> = tree.tuple_paths().into_iter().collect();
            tree.check_invariants();

            // Reported insert matches reality.
            let (itid, ipath) = delta.inserted.clone().unwrap();
            assert_eq!(itid, *tid);
            assert_eq!(after[&itid], ipath);

            // Reported moves match the diff exactly.
            let mut expected_moves: Vec<(u64, Path, Path)> = before
                .iter()
                .filter(|(t, old)| after[t] != **old)
                .map(|(t, old)| (*t, old.clone(), after[t].clone()))
                .collect();
            expected_moves.sort_by_key(|(t, _, _)| *t);
            let mut got = delta.moved.clone();
            got.sort_by_key(|(t, _, _)| *t);
            assert_eq!(got, expected_moves, "delta mismatch at tid {tid}");
        }
    }

    #[test]
    fn delete_returns_path_and_leaves_others_in_place() {
        let (p, _) = pager(512);
        let cfg = RTreeConfig::explicit(2, 1, 3);
        let mut tree = RTree::new(p, cfg);
        let pts = grid_points(60);
        for (tid, coords) in &pts {
            tree.insert(*tid, coords);
        }
        let before: HashMap<u64, Path> = tree.tuple_paths().into_iter().collect();
        let victim = 31u64;
        let path = tree.delete_tracked(victim, &pts[victim as usize].1).unwrap();
        assert_eq!(path, before[&victim]);
        assert_eq!(tree.len(), 59);
        tree.check_invariants();
        let after: HashMap<u64, Path> = tree.tuple_paths().into_iter().collect();
        assert!(!after.contains_key(&victim));
        for (t, p) in &after {
            assert_eq!(p, &before[t], "stable slots: tid {t} must not move on delete");
        }
        // Deleting again fails cleanly.
        assert!(!tree.delete(victim, &pts[victim as usize].1));
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let (p, _) = pager(512);
        let cfg = RTreeConfig::explicit(2, 1, 3);
        let mut tree = RTree::new(p, cfg);
        let pts = grid_points(40);
        for (tid, coords) in &pts {
            tree.insert(*tid, coords);
        }
        for (tid, coords) in &pts {
            assert!(tree.delete(*tid, coords), "tid {tid}");
        }
        assert!(tree.is_empty());
        for (tid, coords) in &pts {
            tree.insert(*tid, coords);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 40);
    }

    #[test]
    fn node_reads_are_counted() {
        let (p, stats) = pager(512);
        let cfg = RTreeConfig::for_page(2, 512);
        let tree = RTree::bulk_load(p, cfg, grid_points(200), 1.0);
        stats.reset();
        let _ = tree.read_node(tree.root_pid());
        assert_eq!(stats.reads(IoCategory::RtreeBlock), 1);
        let _ = tree.read_node_uncounted(tree.root_pid());
        assert_eq!(stats.reads(IoCategory::RtreeBlock), 1);
    }

    #[test]
    fn bulk_load_fill_factor_leaves_slack() {
        let (p, _) = pager(4096);
        let cfg = RTreeConfig::for_page(2, 4096);
        let full = RTree::bulk_load(p, cfg, grid_points(5000), 1.0);
        let (p2, _) = pager(4096);
        let half = RTree::bulk_load(p2, cfg, grid_points(5000), 0.5);
        assert!(half.count_nodes() > full.count_nodes());
        half.check_invariants();
        full.check_invariants();
    }

    #[test]
    fn three_dims_work() {
        let (p, _) = pager(512);
        let cfg = RTreeConfig::for_page(3, 512);
        let pts: Vec<(u64, Vec<f64>)> = (0..200)
            .map(|i| {
                let f = i as f64;
                (i as u64, vec![(f * 0.17) % 1.0, (f * 0.29) % 1.0, (f * 0.41) % 1.0])
            })
            .collect();
        let mut tree = RTree::bulk_load(p, cfg, pts.clone(), 0.8);
        for i in 200..260u64 {
            let f = i as f64;
            tree.insert(i, &[(f * 0.17) % 1.0, (f * 0.29) % 1.0, (f * 0.41) % 1.0]);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 260);
    }
}
