//! A paged R*-tree over the preference dimensions.
//!
//! This is the shared *partition template* of the P-Cube model (§IV-A, third
//! proposal): the preference dimensions are partitioned once, and every cube
//! cell is summarized by a signature over this single tree. Three properties
//! set this implementation apart from a generic R-tree library and exist
//! specifically for signatures:
//!
//! * **Stable slots.** "Every node (including leaf) in R-tree can hold up to
//!   M entries. We assume each node keeps track of its free entries. When a
//!   new tuple is added, the first free entry is assigned" (§IV-B.3). Entries
//!   never shift within a node; an occupancy bitmap tracks free slots. A
//!   signature bit therefore keeps meaning the same child across inserts, and
//!   a non-splitting insert changes only the new tuple's path.
//! * **Paths and SIDs.** Every node and tuple has a [`Path`] — the 1-based
//!   slot positions from the root — and paths map to signature IDs
//!   ([`Path::sid`]) exactly as in the paper:
//!   `SID = p0·(M+1)^l + p1·(M+1)^(l-1) + … + p(l-1)`.
//! * **Tracked mutation.** [`RTree::insert_tracked`] reports which tuple
//!   paths changed (old → new), including under node splits, by traversing
//!   the affected subtree before and after the structural change — the
//!   paper's own recipe for incremental signature maintenance.
//!
//! Nodes live on counted [`pcube_storage::Pager`] pages, so every node visit
//! is a measured "R-tree block retrieval" (the `DBlock`/`SBlock` series of
//! Fig 9). Construction offers both one-at-a-time insertion and STR bulk
//! loading ([`RTree::bulk_load`]).
//!
//! # Example
//!
//! ```
//! use pcube_rtree::{RTree, RTreeConfig};
//! use pcube_storage::{IoCategory, IoStats, Pager, PAGE_SIZE};
//!
//! let pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, IoStats::new_shared());
//! let mut tree = RTree::new(pager, RTreeConfig::for_page(2, PAGE_SIZE));
//! let delta = tree.insert_tracked(7, &[0.25, 0.75]);
//! let (tid, path) = delta.inserted.unwrap();
//! assert_eq!(tid, 7);
//! assert_eq!(path.depth(), 1, "root is a leaf; the tuple sits in slot {}", path.0[0]);
//! assert!(tree.read_node(tree.root_pid()).is_leaf);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geom;
mod node;
mod path;
mod split;
mod tree;

pub use geom::Mbr;
pub use node::{DecodedEntry, DecodedNode};
pub use path::{Path, Sid};
pub use tree::{PathDelta, RTree, RTreeConfig};

// Parallel branch-and-bound shares one tree across scoped worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RTree>();
};
