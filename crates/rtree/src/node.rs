//! Slotted on-page node layout.
//!
//! Unlike a textbook R-tree, entries occupy *stable slots*: a node is an
//! array of `M` fixed positions plus an occupancy bitmap, and removing an
//! entry leaves a hole rather than shifting its neighbours. Signature bits
//! are indexed by slot position, so stability is what keeps signatures valid
//! across unrelated inserts (§IV-B.3 of the paper).
//!
//! Page layout (`D` = dimensions, `M` = slots per node):
//!
//! ```text
//! [type:u8][reserved:u8][occupancy bitmap: ceil(M/8) bytes][pad to 8]
//! leaf slot i:     tid:u64, coords: D × f64          (8 + 8D bytes)
//! internal slot i: child:u32, pad:u32, min: D × f64, max: D × f64
//!                                                     (8 + 16D bytes)
//! ```

use pcube_storage::{read_f64, read_u32, read_u64, write_f64, write_u32, write_u64, PageId};

use crate::geom::Mbr;

const TYPE_LEAF: u8 = 0;
const TYPE_INTERNAL: u8 = 1;
const BITMAP_OFF: usize = 2;

/// Precomputed offsets for one tree's node layout.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    pub dims: usize,
    pub m_max: usize,
    entries_off: usize,
    leaf_stride: usize,
    internal_stride: usize,
}

impl Layout {
    /// Builds the layout for `m_max` slots of `dims`-dimensional entries and
    /// verifies it fits in `page_size` bytes.
    ///
    /// # Panics
    /// Panics if the layout does not fit.
    pub fn new(dims: usize, m_max: usize, page_size: usize) -> Layout {
        assert!(dims >= 1, "at least one dimension");
        assert!(m_max >= 2, "fanout must be at least 2");
        let bitmap_len = m_max.div_ceil(8);
        let entries_off = (BITMAP_OFF + bitmap_len).next_multiple_of(8);
        let leaf_stride = 8 + 8 * dims;
        let internal_stride = 8 + 16 * dims;
        let need = entries_off + m_max * leaf_stride.max(internal_stride);
        assert!(
            need <= page_size,
            "node layout needs {need} bytes > page size {page_size} (dims={dims}, M={m_max})"
        );
        Layout { dims, m_max, entries_off, leaf_stride, internal_stride }
    }

    /// Largest `M` that fits `dims`-dimensional nodes in `page_size` bytes.
    pub fn max_capacity(dims: usize, page_size: usize) -> usize {
        let stride = 8 + 16 * dims; // internal entries are the larger kind
        let mut m = (page_size.saturating_sub(16)) / stride;
        while m >= 2 {
            let bitmap_len = m.div_ceil(8);
            let entries_off = (BITMAP_OFF + bitmap_len).next_multiple_of(8);
            if entries_off + m * stride <= page_size {
                return m;
            }
            m -= 1;
        }
        panic!("page size {page_size} too small for any {dims}-dimensional R-tree node");
    }

    fn leaf_off(&self, slot: usize) -> usize {
        self.entries_off + slot * self.leaf_stride
    }

    fn internal_off(&self, slot: usize) -> usize {
        self.entries_off + slot * self.internal_stride
    }
}

pub fn init_node(page: &mut [u8], is_leaf: bool) {
    page.fill(0);
    page[0] = if is_leaf { TYPE_LEAF } else { TYPE_INTERNAL };
}

pub fn is_leaf(page: &[u8]) -> bool {
    page[0] == TYPE_LEAF
}

pub fn occupied(page: &[u8], slot: usize) -> bool {
    page[BITMAP_OFF + slot / 8] >> (slot % 8) & 1 == 1
}

pub fn set_occupied(page: &mut [u8], slot: usize, value: bool) {
    if value {
        page[BITMAP_OFF + slot / 8] |= 1 << (slot % 8);
    } else {
        page[BITMAP_OFF + slot / 8] &= !(1 << (slot % 8));
    }
}

pub fn count_occupied(page: &[u8], layout: &Layout) -> usize {
    (0..layout.m_max).filter(|&s| occupied(page, s)).count()
}

/// "When a new tuple is added, the first free entry is assigned."
pub fn first_free_slot(page: &[u8], layout: &Layout) -> Option<usize> {
    (0..layout.m_max).find(|&s| !occupied(page, s))
}

pub fn write_leaf_entry(page: &mut [u8], layout: &Layout, slot: usize, tid: u64, coords: &[f64]) {
    debug_assert_eq!(coords.len(), layout.dims);
    let off = layout.leaf_off(slot);
    write_u64(page, off, tid);
    for (d, &c) in coords.iter().enumerate() {
        write_f64(page, off + 8 + 8 * d, c);
    }
    set_occupied(page, slot, true);
}

pub fn read_leaf_entry(page: &[u8], layout: &Layout, slot: usize) -> (u64, Vec<f64>) {
    let off = layout.leaf_off(slot);
    let tid = read_u64(page, off);
    let coords = (0..layout.dims).map(|d| read_f64(page, off + 8 + 8 * d)).collect();
    (tid, coords)
}

pub fn write_internal_entry(page: &mut [u8], layout: &Layout, slot: usize, child: PageId, mbr: &Mbr) {
    debug_assert_eq!(mbr.dims(), layout.dims);
    let off = layout.internal_off(slot);
    write_u32(page, off, child.0);
    for d in 0..layout.dims {
        write_f64(page, off + 8 + 8 * d, mbr.min[d]);
        write_f64(page, off + 8 + 8 * (layout.dims + d), mbr.max[d]);
    }
    set_occupied(page, slot, true);
}

pub fn read_internal_entry(page: &[u8], layout: &Layout, slot: usize) -> (PageId, Mbr) {
    let off = layout.internal_off(slot);
    let child = PageId(read_u32(page, off));
    let min = (0..layout.dims).map(|d| read_f64(page, off + 8 + 8 * d)).collect();
    let max = (0..layout.dims).map(|d| read_f64(page, off + 8 + 8 * (layout.dims + d))).collect();
    (child, Mbr { min, max })
}

/// One entry of a decoded node.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedEntry {
    /// A data tuple stored in a leaf.
    Tuple {
        /// Tuple identifier (row id in the base table).
        tid: u64,
        /// Coordinates on the preference dimensions.
        coords: Vec<f64>,
    },
    /// A child pointer stored in an internal node.
    Child {
        /// Page of the child node.
        child: PageId,
        /// Bounding rectangle of the child's subtree.
        mbr: Mbr,
    },
}

impl DecodedEntry {
    /// The bounding rectangle of this entry (degenerate for tuples).
    pub fn mbr(&self) -> Mbr {
        match self {
            DecodedEntry::Tuple { coords, .. } => Mbr::point(coords),
            DecodedEntry::Child { mbr, .. } => mbr.clone(),
        }
    }
}

/// An R-tree node decoded into owned values, with each entry tagged by its
/// stable slot (0-based; the 1-based path position is `slot + 1`).
#[derive(Debug, Clone)]
pub struct DecodedNode {
    /// `true` if the node is a leaf.
    pub is_leaf: bool,
    /// Occupied entries as `(slot, entry)` pairs in slot order.
    pub entries: Vec<(usize, DecodedEntry)>,
}

impl DecodedNode {
    /// The tight bounding rectangle over all entries.
    pub fn mbr(&self, dims: usize) -> Mbr {
        let mut out = Mbr::empty(dims);
        for (_, e) in &self.entries {
            out.expand(&e.mbr());
        }
        out
    }
}

pub fn decode(page: &[u8], layout: &Layout) -> DecodedNode {
    let leaf = is_leaf(page);
    let mut entries = Vec::new();
    for slot in 0..layout.m_max {
        if !occupied(page, slot) {
            continue;
        }
        let entry = if leaf {
            let (tid, coords) = read_leaf_entry(page, layout, slot);
            DecodedEntry::Tuple { tid, coords }
        } else {
            let (child, mbr) = read_internal_entry(page, layout, slot);
            DecodedEntry::Child { child, mbr }
        };
        entries.push((slot, entry));
    }
    DecodedNode { is_leaf: leaf, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_reasonable_for_paper_page_size() {
        // 4 KB, 2 preference dimensions: around a hundred entries per node,
        // the same order of magnitude as the paper's M = 204 (they assume
        // 4-byte coordinates; we store f64).
        let m2 = Layout::max_capacity(2, 4096);
        assert!((90..=120).contains(&m2), "M for 2 dims = {m2}");
        let m5 = Layout::max_capacity(5, 4096);
        assert!((40..=50).contains(&m5), "M for 5 dims = {m5}");
        // The computed capacity must actually fit.
        let _ = Layout::new(2, m2, 4096);
        let _ = Layout::new(5, m5, 4096);
    }

    #[test]
    fn leaf_entries_roundtrip_with_stable_slots() {
        let layout = Layout::new(3, 10, 1024);
        let mut page = vec![0u8; 1024];
        init_node(&mut page, true);
        assert!(is_leaf(&page));
        write_leaf_entry(&mut page, &layout, 4, 77, &[0.1, 0.2, 0.3]);
        write_leaf_entry(&mut page, &layout, 0, 11, &[1.0, 2.0, 3.0]);
        assert_eq!(count_occupied(&page, &layout), 2);
        assert_eq!(first_free_slot(&page, &layout), Some(1));
        let (tid, coords) = read_leaf_entry(&page, &layout, 4);
        assert_eq!(tid, 77);
        assert_eq!(coords, vec![0.1, 0.2, 0.3]);
        set_occupied(&mut page, 0, false);
        assert_eq!(first_free_slot(&page, &layout), Some(0));
        assert_eq!(count_occupied(&page, &layout), 1);
    }

    #[test]
    fn internal_entries_roundtrip() {
        let layout = Layout::new(2, 8, 512);
        let mut page = vec![0u8; 512];
        init_node(&mut page, false);
        assert!(!is_leaf(&page));
        let mbr = Mbr { min: vec![0.0, 1.0], max: vec![2.0, 3.0] };
        write_internal_entry(&mut page, &layout, 3, PageId(99), &mbr);
        let (child, got) = read_internal_entry(&page, &layout, 3);
        assert_eq!(child, PageId(99));
        assert_eq!(got, mbr);
    }

    #[test]
    fn decode_skips_holes_and_computes_mbr() {
        let layout = Layout::new(2, 6, 512);
        let mut page = vec![0u8; 512];
        init_node(&mut page, true);
        write_leaf_entry(&mut page, &layout, 1, 1, &[0.0, 0.0]);
        write_leaf_entry(&mut page, &layout, 5, 2, &[1.0, 2.0]);
        let node = decode(&page, &layout);
        assert!(node.is_leaf);
        assert_eq!(node.entries.len(), 2);
        assert_eq!(node.entries[0].0, 1);
        assert_eq!(node.entries[1].0, 5);
        let mbr = node.mbr(2);
        assert_eq!(mbr.min, vec![0.0, 0.0]);
        assert_eq!(mbr.max, vec![1.0, 2.0]);
    }

    #[test]
    fn full_node_has_no_free_slot() {
        let layout = Layout::new(2, 3, 512);
        let mut page = vec![0u8; 512];
        init_node(&mut page, true);
        for s in 0..3 {
            write_leaf_entry(&mut page, &layout, s, s as u64, &[0.0, 0.0]);
        }
        assert_eq!(first_free_slot(&page, &layout), None);
    }

    #[test]
    #[should_panic]
    fn oversized_layout_panics() {
        let _ = Layout::new(5, 100, 512);
    }
}
