//! Minimum bounding rectangles and the few geometric predicates R* needs.

/// An axis-aligned minimum bounding rectangle in `dims` dimensions.
///
/// A point is represented as a degenerate `Mbr` with `min == max` where
/// convenient; leaf entries store bare coordinate slices instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    /// Lower corner, one value per dimension.
    pub min: Vec<f64>,
    /// Upper corner, one value per dimension.
    pub max: Vec<f64>,
}

impl Mbr {
    /// The degenerate rectangle covering a single point.
    pub fn point(coords: &[f64]) -> Self {
        Mbr { min: coords.to_vec(), max: coords.to_vec() }
    }

    /// An "empty" rectangle that acts as the identity for [`Mbr::expand`].
    pub fn empty(dims: usize) -> Self {
        Mbr { min: vec![f64::INFINITY; dims], max: vec![f64::NEG_INFINITY; dims] }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.min.len()
    }

    /// `true` if this rectangle is the [`Mbr::empty`] identity.
    pub fn is_empty(&self) -> bool {
        self.min.iter().zip(&self.max).any(|(lo, hi)| lo > hi)
    }

    /// Grows `self` to cover `other`.
    pub fn expand(&mut self, other: &Mbr) {
        for d in 0..self.min.len() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// Grows `self` to cover the point `coords`.
    pub fn expand_point(&mut self, coords: &[f64]) {
        for ((lo, hi), &c) in self.min.iter_mut().zip(self.max.iter_mut()).zip(coords) {
            *lo = lo.min(c);
            *hi = hi.max(c);
        }
    }

    /// The union of two rectangles.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut out = self.clone();
        out.expand(other);
        out
    }

    /// Hyper-volume (product of side lengths); zero for degenerate boxes.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.min.iter().zip(&self.max).map(|(lo, hi)| hi - lo).product()
    }

    /// Sum of side lengths (the R* "margin" criterion).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.min.iter().zip(&self.max).map(|(lo, hi)| hi - lo).sum()
    }

    /// Volume of the intersection with `other` (zero if disjoint).
    pub fn overlap(&self, other: &Mbr) -> f64 {
        let mut v = 1.0;
        for d in 0..self.min.len() {
            let lo = self.min[d].max(other.min[d]);
            let hi = self.max[d].min(other.max[d]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Increase in area needed to cover `other`.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// `true` if `coords` lies inside (inclusive) the rectangle.
    pub fn contains_point(&self, coords: &[f64]) -> bool {
        self.min.iter().zip(&self.max).zip(coords).all(|((lo, hi), c)| lo <= c && c <= hi)
    }


    /// `true` if `other` lies fully inside `self` (inclusive).
    pub fn contains(&self, other: &Mbr) -> bool {
        (0..self.min.len()).all(|d| self.min[d] <= other.min[d] && other.max[d] <= self.max[d])
    }

    /// Sum of the lower corner's coordinates.
    ///
    /// This is the BBS ordering key for skylines: "each node n is associated
    /// with d(n) = min over the region of Σ Nᵢ(x)", which for a rectangle is
    /// attained at its lower corner.
    pub fn min_coord_sum(&self) -> f64 {
        self.min.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr(min: &[f64], max: &[f64]) -> Mbr {
        Mbr { min: min.to_vec(), max: max.to_vec() }
    }

    #[test]
    fn area_margin_overlap() {
        let a = mbr(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = mbr(&[1.0, 1.0], &[3.0, 2.0]);
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(b.overlap(&a), 1.0);
        let c = mbr(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    fn union_and_enlargement() {
        let a = mbr(&[0.0, 0.0], &[1.0, 1.0]);
        let b = mbr(&[2.0, 2.0], &[3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u, mbr(&[0.0, 0.0], &[3.0, 3.0]));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn empty_identity() {
        let mut e = Mbr::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
        e.expand_point(&[1.0, 2.0]);
        assert!(!e.is_empty());
        assert_eq!(e, Mbr::point(&[1.0, 2.0]));
    }

    #[test]
    fn containment() {
        let a = mbr(&[0.0, 0.0], &[4.0, 4.0]);
        assert!(a.contains_point(&[0.0, 4.0]));
        assert!(!a.contains_point(&[4.1, 0.0]));
        assert!(a.contains(&mbr(&[1.0, 1.0], &[2.0, 2.0])));
        assert!(a.contains(&a));
        assert!(!a.contains(&mbr(&[1.0, 1.0], &[5.0, 2.0])));
    }

    #[test]
    fn min_coord_sum_is_lower_corner() {
        let a = mbr(&[0.25, 0.5], &[0.9, 0.9]);
        assert_eq!(a.min_coord_sum(), 0.75);
    }
}
