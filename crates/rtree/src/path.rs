//! Node and tuple paths, and their mapping to signature IDs.

/// A signature ID: the integer encoding of a node path (§IV-B.1).
///
/// `SID = p0·(M+1)^l + p1·(M+1)^(l-1) + … + p(l-1)` for an `l`-level path
/// with 1-based positions `pᵢ ∈ [1, M]`. The root (empty path) has SID 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sid(pub u64);

impl Sid {
    /// The root's SID (the empty path).
    pub const ROOT: Sid = Sid(0);
}

impl std::fmt::Display for Sid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sid{}", self.0)
    }
}

/// A path from the R-tree root: the sequence of 1-based slot positions taken
/// at each level. The empty path denotes the root itself. A *tuple path*
/// ends with the tuple's slot inside its leaf; a *node path* stops at the
/// node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path(pub Vec<u16>);

impl Path {
    /// The empty path (the root node).
    pub fn root() -> Self {
        Path(Vec::new())
    }

    /// Number of positions (the root has depth 0).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// `true` for the root path.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Extends the path by one 1-based position.
    ///
    /// # Panics
    /// Panics if `position` is zero (positions are 1-based).
    pub fn child(&self, position: u16) -> Path {
        assert!(position >= 1, "path positions are 1-based");
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(position);
        Path(v)
    }

    /// The path without its last position, or `None` for the root.
    pub fn parent(&self) -> Option<Path> {
        if self.0.is_empty() {
            return None;
        }
        Some(Path(self.0[..self.0.len() - 1].to_vec()))
    }

    /// The final position, or `None` for the root.
    pub fn last(&self) -> Option<u16> {
        self.0.last().copied()
    }

    /// `true` if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// The prefix of length `len`.
    ///
    /// # Panics
    /// Panics if `len > depth()`.
    pub fn prefix(&self, len: usize) -> Path {
        Path(self.0[..len].to_vec())
    }

    /// Maps the path to its SID for a tree with fanout `m_max`.
    ///
    /// # Panics
    /// Panics if a position exceeds `m_max` or the SID overflows `u64`
    /// (which would need a tree deeper than any this workspace builds).
    pub fn sid(&self, m_max: usize) -> Sid {
        let base = m_max as u64 + 1;
        let mut sid: u64 = 0;
        for &p in &self.0 {
            assert!(p >= 1 && (p as usize) <= m_max, "position {p} out of 1..={m_max}");
            sid = sid
                .checked_mul(base)
                .and_then(|s| s.checked_add(u64::from(p)))
                .expect("SID overflow: tree too deep for u64 signature IDs");
        }
        Sid(sid)
    }

    /// SID of the prefix of length `len`, computed without allocating the
    /// intermediate [`Path`]. Equivalent to `self.prefix(len).sid(m_max)` —
    /// signature probes call this once per ancestor level on every kernel
    /// pop, so the allocation matters under concurrency.
    ///
    /// # Panics
    /// Panics if `len > depth()`, a position exceeds `m_max`, or the SID
    /// overflows `u64`.
    pub fn prefix_sid(&self, len: usize, m_max: usize) -> Sid {
        let base = m_max as u64 + 1;
        let mut sid: u64 = 0;
        for &p in &self.0[..len] {
            assert!(p >= 1 && (p as usize) <= m_max, "position {p} out of 1..={m_max}");
            sid = sid
                .checked_mul(base)
                .and_then(|s| s.checked_add(u64::from(p)))
                .expect("SID overflow: tree too deep for u64 signature IDs");
        }
        Sid(sid)
    }

    /// Inverse of [`Path::sid`]: reconstructs the path with fanout `m_max`.
    pub fn from_sid(sid: Sid, m_max: usize) -> Path {
        let base = m_max as u64 + 1;
        let mut rest = sid.0;
        let mut rev = Vec::new();
        while rest != 0 {
            let pos = rest % base;
            // Positions are 1-based, so a zero digit cannot appear in a valid SID.
            assert!(pos != 0, "invalid SID {sid}: zero digit");
            rev.push(pos as u16);
            rest /= base;
        }
        rev.reverse();
        Path(rev)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_sid() {
        // §IV-B.1: "M = 2 and the path of the node N3 is <1,1>. Its SID is 4."
        let p = Path(vec![1, 1]);
        assert_eq!(p.sid(2), Sid(4));
    }

    #[test]
    fn sid_roundtrip_various_fanouts() {
        for m in [2usize, 3, 10, 204] {
            for path in [
                Path::root(),
                Path(vec![1]),
                Path(vec![m as u16]),
                Path(vec![1, 2]),
                Path(vec![m as u16, 1, m as u16]),
            ] {
                let sid = path.sid(m);
                assert_eq!(Path::from_sid(sid, m), path, "m={m} path={path}");
            }
        }
    }

    #[test]
    fn sids_are_unique_per_fanout() {
        let m = 3usize;
        let mut seen = std::collections::HashSet::new();
        // All paths of depth <= 3.
        let mut all = vec![Path::root()];
        let mut frontier = vec![Path::root()];
        for _ in 0..3 {
            let mut next = Vec::new();
            for p in &frontier {
                for pos in 1..=m as u16 {
                    next.push(p.child(pos));
                }
            }
            all.extend(next.iter().cloned());
            frontier = next;
        }
        for p in &all {
            assert!(seen.insert(p.sid(m)), "duplicate SID for {p}");
        }
    }

    #[test]
    fn child_parent_prefix() {
        let root = Path::root();
        assert!(root.is_root());
        assert_eq!(root.parent(), None);
        let p = root.child(1).child(2).child(1);
        assert_eq!(p.depth(), 3);
        assert_eq!(p.last(), Some(1));
        assert_eq!(p.parent(), Some(Path(vec![1, 2])));
        assert!(root.is_prefix_of(&p));
        assert!(Path(vec![1, 2]).is_prefix_of(&p));
        assert!(!Path(vec![2]).is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
        assert_eq!(p.prefix(2), Path(vec![1, 2]));
    }

    #[test]
    fn prefix_sid_matches_allocating_form() {
        for m in [2usize, 3, 10, 204] {
            let p = Path(vec![1, 2, 1, (m as u16).min(2)]);
            for len in 0..=p.depth() {
                assert_eq!(p.prefix_sid(len, m), p.prefix(len).sid(m), "m={m} len={len}");
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Path(vec![1, 1, 2]).to_string(), "<1,1,2>");
        assert_eq!(Path::root().to_string(), "<>");
    }

    #[test]
    #[should_panic]
    fn zero_position_rejected() {
        Path::root().child(0);
    }

    #[test]
    #[should_panic]
    fn oversized_position_rejected_in_sid() {
        Path(vec![3]).sid(2);
    }
}
