//! A disk-based B+-tree over the simulated pager.
//!
//! Two roles in the P-Cube system (§IV-B.2, §VI-A):
//!
//! 1. **Boolean-dimension indexes** for the Boolean-first baseline and the
//!    index-merge baseline: one tree per boolean dimension mapping
//!    `(value, tid)` composite keys to unit values, scanned by range to
//!    enumerate the tids matching a predicate.
//! 2. **The signature directory**: "All signatures are stored on disk and
//!    indexed by the cell ID and the root (of the sub-tree) SID" — a tree
//!    mapping `(cell id, SID)` to the page holding the partial signature.
//!
//! Keys and values are `u64`; composite keys are packed with
//! [`composite_key`]. Every node access goes through a counted
//! [`pcube_storage::Pager`], so baseline and signature I/O is measured on the
//! same ledger the paper uses.
//!
//! # Example
//!
//! ```
//! use pcube_bptree::BPlusTree;
//! use pcube_storage::{IoCategory, IoStats, Pager, PAGE_SIZE};
//!
//! let stats = IoStats::new_shared();
//! let pager = Pager::new(PAGE_SIZE, IoCategory::BptreePage, stats);
//! let mut tree = BPlusTree::new(pager);
//! for k in 0..100u64 {
//!     tree.insert(k, k * 10);
//! }
//! assert_eq!(tree.get(42), Some(420));
//! let sum: u64 = tree.range(10..=19).map(|(_, v)| v).sum();
//! assert_eq!(sum, (100..=190).step_by(10).sum::<u64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod tree;

pub use tree::BPlusTree;

// The signature directory is probed concurrently by query threads; the tree
// (including its pinned-page cache) must stay `Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BPlusTree>();
};

/// Packs two 32-bit components into one ordered 64-bit composite key.
///
/// Ordering of the packed keys is lexicographic in `(hi, lo)`, so a range
/// scan over `composite_key(v, 0)..=composite_key(v, u32::MAX)` enumerates
/// every entry with first component `v` in `lo` order.
#[inline]
pub fn composite_key(hi: u32, lo: u32) -> u64 {
    (u64::from(hi) << 32) | u64::from(lo)
}

/// Splits a composite key back into its `(hi, lo)` components.
#[inline]
pub fn split_key(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod key_tests {
    use super::*;

    #[test]
    fn composite_roundtrip() {
        for (hi, lo) in [(0, 0), (1, 2), (u32::MAX, u32::MAX), (7, u32::MAX)] {
            assert_eq!(split_key(composite_key(hi, lo)), (hi, lo));
        }
    }

    #[test]
    fn composite_order_is_lexicographic() {
        assert!(composite_key(1, u32::MAX) < composite_key(2, 0));
        assert!(composite_key(5, 1) < composite_key(5, 2));
    }
}
