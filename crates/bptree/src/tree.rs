//! The B+-tree proper: lookup, insert, delete, range scans and bulk loading.

use std::sync::RwLock;
use std::collections::HashMap;
use std::ops::{Bound, RangeBounds};

use pcube_storage::{PageId, Pager, StorageError};

use crate::node::{self, TYPE_LEAF};

/// A disk-based B+-tree mapping `u64` keys to `u64` values.
///
/// All node accesses are charged to the owning [`Pager`]'s I/O category. Keys
/// are unique; [`BPlusTree::insert`] replaces and returns any previous value.
///
/// With [`BPlusTree::set_internal_pinning`] enabled, internal (non-leaf)
/// pages are served from an in-memory cache after their first read — the
/// standard buffer-pool assumption for index upper levels — so a point
/// lookup costs one counted leaf read once the cache is warm. Any mutation
/// drops the cache.
pub struct BPlusTree {
    pager: Pager,
    root: PageId,
    height: usize,
    len: u64,
    leaf_cap: usize,
    internal_cap: usize,
    pin_internal: bool,
    /// `RwLock` so concurrent query threads can serve pinned internal
    /// pages from the cache; writes happen only on first read of a page and
    /// on invalidation. Lock poisoning is recovered from, not propagated:
    /// the cache holds whole-page copies installed atomically, so whatever a
    /// panicking holder left behind is still servable (or clearable).
    internal_cache: RwLock<HashMap<PageId, Box<[u8]>>>,
}

impl Clone for BPlusTree {
    /// Deep copy over a cloned pager. The clone keeps the pinning flag but
    /// starts with a cold internal cache (it refills lazily on first reads).
    fn clone(&self) -> Self {
        BPlusTree {
            pager: self.pager.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            leaf_cap: self.leaf_cap,
            internal_cap: self.internal_cap,
            pin_internal: self.pin_internal,
            internal_cache: RwLock::new(HashMap::new()),
        }
    }
}

impl BPlusTree {
    /// Creates an empty tree that stores its nodes in `pager`.
    pub fn new(mut pager: Pager) -> Self {
        let leaf_cap = node::leaf_capacity(pager.page_size());
        let internal_cap = node::internal_capacity(pager.page_size());
        let root = pager.allocate();
        let mut page = vec![0u8; pager.page_size()];
        node::init_leaf(&mut page);
        pager.write(root, &page);
        BPlusTree {
            pager,
            root,
            height: 1,
            len: 0,
            leaf_cap,
            internal_cap,
            pin_internal: false,
            internal_cache: RwLock::new(HashMap::new()),
        }
    }

    /// Structural metadata needed to re-open the tree over a deserialized
    /// pager: `(root page, height, entry count)`.
    pub fn parts(&self) -> (PageId, usize, u64) {
        (self.root, self.height, self.len)
    }

    /// Re-opens a tree over a pager that already holds its pages (the
    /// counterpart of [`BPlusTree::parts`] after pager deserialization).
    pub fn from_parts(pager: Pager, root: PageId, height: usize, len: u64) -> Self {
        let leaf_cap = node::leaf_capacity(pager.page_size());
        let internal_cap = node::internal_capacity(pager.page_size());
        BPlusTree {
            pager,
            root,
            height,
            len,
            leaf_cap,
            internal_cap,
            pin_internal: false,
            internal_cache: RwLock::new(HashMap::new()),
        }
    }

    /// Enables (or disables) in-memory pinning of internal pages. Disabling
    /// drops any cached pages.
    pub fn set_internal_pinning(&mut self, on: bool) {
        self.pin_internal = on;
        if !on {
            self.internal_cache.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Reads a node page, serving pinned internal pages from memory.
    fn read_page(&self, pid: PageId) -> Vec<u8> {
        if self.pin_internal {
            if let Some(page) = self.internal_cache.read().unwrap_or_else(|e| e.into_inner()).get(&pid) {
                return page.to_vec();
            }
        }
        let page = self.pager.read(pid).to_vec();
        if self.pin_internal && node::node_type(&page) != TYPE_LEAF {
            self.internal_cache
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .insert(pid, page.clone().into_boxed_slice());
        }
        page
    }

    fn invalidate_cache(&mut self) {
        if self.pin_internal {
            self.internal_cache.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Builds a tree from an iterator of **strictly increasing** keys,
    /// packing leaves to `fill` (a fraction in `(0, 1]`, typically `1.0` for
    /// read-only indexes or `0.7` to leave room for inserts).
    ///
    /// # Panics
    /// Panics if keys are not strictly increasing or `fill` is out of range.
    pub fn bulk_load(mut pager: Pager, entries: impl IntoIterator<Item = (u64, u64)>, fill: f64) -> Self {
        assert!(fill > 0.0 && fill <= 1.0, "fill factor must be in (0,1]");
        let leaf_cap = node::leaf_capacity(pager.page_size());
        let internal_cap = node::internal_capacity(pager.page_size());
        let per_leaf = ((leaf_cap as f64 * fill) as usize).max(1);
        let per_internal = ((internal_cap as f64 * fill) as usize).max(2);

        // Build the leaf level.
        let mut page = vec![0u8; pager.page_size()];
        node::init_leaf(&mut page);
        let mut in_page = 0usize;
        let mut len = 0u64;
        let mut last_key: Option<u64> = None;
        // (first key, page id) per completed leaf
        let mut level: Vec<(u64, PageId)> = Vec::new();
        let mut first_key_in_page = 0u64;
        for (key, value) in entries {
            if let Some(prev) = last_key {
                assert!(key > prev, "bulk_load requires strictly increasing keys");
            }
            last_key = Some(key);
            if in_page == per_leaf {
                let pid = pager.allocate();
                node::set_count(&mut page, in_page);
                pager.write(pid, &page);
                level.push((first_key_in_page, pid));
                node::init_leaf(&mut page);
                in_page = 0;
            }
            if in_page == 0 {
                first_key_in_page = key;
            }
            node::set_leaf_entry(&mut page, in_page, key, value);
            in_page += 1;
            len += 1;
        }
        // Flush the final (possibly empty) leaf.
        let pid = pager.allocate();
        node::set_count(&mut page, in_page);
        pager.write(pid, &page);
        level.push((first_key_in_page, pid));
        // Chain the leaves.
        for w in level.windows(2) {
            let (_, left) = w[0];
            let (_, right) = w[1];
            pager.update(left, |p| node::set_next_leaf(p, right));
        }

        // Build internal levels bottom-up.
        let mut height = 1usize;
        let mut current = level;
        while current.len() > 1 {
            height += 1;
            let mut upper: Vec<(u64, PageId)> = Vec::new();
            let mut i = 0usize;
            while i < current.len() {
                let group_end = (i + per_internal + 1).min(current.len());
                // Avoid a trailing group with a single child: steal one.
                let group_end = if group_end < current.len() && current.len() - group_end == 1 {
                    group_end - 1
                } else {
                    group_end
                };
                let mut p = vec![0u8; pager.page_size()];
                node::init_internal(&mut p);
                node::set_internal_child(&mut p, 0, current[i].1);
                let mut n_keys = 0usize;
                for (j, &(first, child)) in current[i + 1..group_end].iter().enumerate() {
                    node::set_internal_key(&mut p, j, first);
                    node::set_internal_child(&mut p, j + 1, child);
                    n_keys += 1;
                }
                node::set_count(&mut p, n_keys);
                let pid = pager.allocate();
                pager.write(pid, &p);
                upper.push((current[i].0, pid));
                i = group_end;
            }
            current = upper;
        }
        let root = current[0].1;
        BPlusTree {
            pager,
            root,
            height,
            len,
            leaf_cap,
            internal_cap,
            pin_internal: false,
            internal_cache: RwLock::new(HashMap::new()),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The pager backing this tree (for size/I-O accounting).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Mutable access to the backing pager — the hook chaos tests use to
    /// install fault plans or corrupt pages underneath the tree.
    pub fn pager_mut(&mut self) -> &mut Pager {
        &mut self.pager
    }

    /// Fallible [`BPlusTree::read_page`]: propagates pager errors and
    /// rejects pages whose entry count is structurally impossible, so
    /// corrupt bytes surface as [`StorageError`] instead of a slice panic.
    fn try_read_page(&self, pid: PageId) -> Result<Vec<u8>, StorageError> {
        if self.pin_internal {
            if let Some(page) = self.internal_cache.read().unwrap_or_else(|e| e.into_inner()).get(&pid) {
                return Ok(page.to_vec());
            }
        }
        let page = self.pager.try_read(pid)?.to_vec();
        let cap = if node::node_type(&page) == TYPE_LEAF { self.leaf_cap } else { self.internal_cap };
        if node::count(&page) > cap {
            return Err(StorageError::Malformed { pid, what: "node count exceeds page capacity" });
        }
        if self.pin_internal && node::node_type(&page) != TYPE_LEAF {
            self.internal_cache
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .insert(pid, page.clone().into_boxed_slice());
        }
        Ok(page)
    }

    /// Looks up `key`, charging one counted read per level (pinned internal
    /// pages are free after first touch).
    ///
    /// Infallible [`BPlusTree::try_get`]; panics where that errors.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        self.try_get(key).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`BPlusTree::get`]: corrupt or unreadable pages yield a
    /// [`StorageError`] instead of panicking. The descent is bounded by the
    /// tree height, so a corrupt child pointer cannot loop forever.
    pub fn try_get(&self, key: u64) -> Result<Option<u64>, StorageError> {
        let mut pid = self.root;
        for _ in 0..self.height {
            // Copy the page out so we can keep descending without holding
            // the borrow (pages are one node, this is a single memcpy).
            let page = self.try_read_page(pid)?;
            if node::node_type(&page) == TYPE_LEAF {
                return Ok(match node::leaf_search(&page, key) {
                    Ok(i) => Some(node::leaf_value(&page, i)),
                    Err(_) => None,
                });
            }
            pid = node::internal_child(&page, node::internal_descend(&page, key));
        }
        Err(StorageError::Malformed { pid, what: "descent exceeded the tree height" })
    }

    /// Fallible bounded range scan: collects every `(key, value)` with key in
    /// `range`, returning a [`StorageError`] on corrupt or unreadable pages.
    /// The leaf walk is bounded by the pager's page count, so a corrupt
    /// next-leaf pointer cannot cycle.
    pub fn try_range_collect(
        &self,
        range: impl RangeBounds<u64>,
    ) -> Result<Vec<(u64, u64)>, StorageError> {
        let lo = match range.start_bound() {
            Bound::Included(&k) => k,
            Bound::Excluded(&k) => k.saturating_add(1),
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&k) => Some(k),
            Bound::Excluded(&k) => {
                if k == 0 {
                    return Ok(Vec::new());
                }
                Some(k - 1)
            }
            Bound::Unbounded => None,
        };
        // Descend to the leaf containing lo, bounded by the tree height.
        let mut pid = self.root;
        let mut page = None;
        for _ in 0..self.height {
            let p = self.try_read_page(pid)?;
            if node::node_type(&p) == TYPE_LEAF {
                page = Some(p);
                break;
            }
            pid = node::internal_child(&p, node::internal_descend(&p, lo));
        }
        let mut page =
            page.ok_or(StorageError::Malformed { pid, what: "descent exceeded the tree height" })?;
        let mut idx = match node::leaf_search(&page, lo) {
            Ok(i) | Err(i) => i,
        };
        let mut out = Vec::new();
        // A well-formed leaf chain visits each allocated page at most once.
        let mut hops = self.pager.live_pages();
        loop {
            while idx < node::count(&page) {
                let key = node::leaf_key(&page, idx);
                if hi.is_some_and(|hi| key > hi) {
                    return Ok(out);
                }
                out.push((key, node::leaf_value(&page, idx)));
                idx += 1;
            }
            let next = node::next_leaf(&page);
            if next.is_invalid() {
                return Ok(out);
            }
            if hops == 0 {
                return Err(StorageError::Malformed { pid: next, what: "leaf chain longer than the page count (cycle?)" });
            }
            hops -= 1;
            page = self.try_read_page(next)?;
            if node::node_type(&page) != TYPE_LEAF {
                return Err(StorageError::Malformed { pid: next, what: "leaf chain points at a non-leaf page" });
            }
            idx = 0;
        }
    }

    /// Inserts `key -> value`, returning the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        self.invalidate_cache();
        let (old, split) = self.insert_rec(self.root, self.height, key, value);
        if let Some((sep, right)) = split {
            let mut p = vec![0u8; self.pager.page_size()];
            node::init_internal(&mut p);
            node::set_internal_child(&mut p, 0, self.root);
            node::set_internal_key(&mut p, 0, sep);
            node::set_internal_child(&mut p, 1, right);
            node::set_count(&mut p, 1);
            let new_root = self.pager.allocate();
            self.pager.write(new_root, &p);
            self.root = new_root;
            self.height += 1;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        level: usize,
        key: u64,
        value: u64,
    ) -> (Option<u64>, Option<(u64, PageId)>) {
        let mut page = self.pager.read(pid).to_vec();
        if level == 1 {
            debug_assert_eq!(node::node_type(&page), TYPE_LEAF);
            let n = node::count(&page);
            match node::leaf_search(&page, key) {
                Ok(i) => {
                    let old = node::leaf_value(&page, i);
                    node::set_leaf_entry(&mut page, i, key, value);
                    self.pager.write(pid, &page);
                    return (Some(old), None);
                }
                Err(i) => {
                    if n < self.leaf_cap {
                        node::leaf_open_slot(&mut page, i, n);
                        node::set_leaf_entry(&mut page, i, key, value);
                        node::set_count(&mut page, n + 1);
                        self.pager.write(pid, &page);
                        return (None, None);
                    }
                    // Split the leaf: left keeps [0, mid), right gets [mid, n).
                    let mid = n / 2;
                    let mut right = vec![0u8; self.pager.page_size()];
                    node::init_leaf(&mut right);
                    for j in mid..n {
                        node::set_leaf_entry(&mut right, j - mid, node::leaf_key(&page, j), node::leaf_value(&page, j));
                    }
                    node::set_count(&mut right, n - mid);
                    node::set_next_leaf(&mut right, node::next_leaf(&page));
                    node::set_count(&mut page, mid);
                    let right_pid = self.pager.allocate();
                    node::set_next_leaf(&mut page, right_pid);
                    // Insert into the proper half.
                    if i < mid {
                        let ln = mid;
                        node::leaf_open_slot(&mut page, i, ln);
                        node::set_leaf_entry(&mut page, i, key, value);
                        node::set_count(&mut page, ln + 1);
                    } else {
                        let ri = i - mid;
                        let rn = n - mid;
                        node::leaf_open_slot(&mut right, ri, rn);
                        node::set_leaf_entry(&mut right, ri, key, value);
                        node::set_count(&mut right, rn + 1);
                    }
                    let sep = node::leaf_key(&right, 0);
                    self.pager.write(pid, &page);
                    self.pager.write(right_pid, &right);
                    return (None, Some((sep, right_pid)));
                }
            }
        }
        // Internal node.
        let slot = node::internal_descend(&page, key);
        let child = node::internal_child(&page, slot);
        let (old, split) = self.insert_rec(child, level - 1, key, value);
        let Some((sep, new_child)) = split else {
            return (old, None);
        };
        let n = node::count(&page);
        if n < self.internal_cap {
            node::internal_open_slot(&mut page, slot, n);
            node::set_internal_key(&mut page, slot, sep);
            node::set_internal_child(&mut page, slot + 1, new_child);
            node::set_count(&mut page, n + 1);
            self.pager.write(pid, &page);
            return (old, None);
        }
        // Split the internal node. Collect keys/children, insert, redistribute.
        let mut keys: Vec<u64> = (0..n).map(|j| node::internal_key(&page, j)).collect();
        let mut children: Vec<PageId> = (0..=n).map(|j| node::internal_child(&page, j)).collect();
        keys.insert(slot, sep);
        children.insert(slot + 1, new_child);
        let total = keys.len();
        let mid = total / 2; // key `mid` moves up
        let up_key = keys[mid];
        let mut left = vec![0u8; self.pager.page_size()];
        node::init_internal(&mut left);
        node::set_internal_child(&mut left, 0, children[0]);
        for j in 0..mid {
            node::set_internal_key(&mut left, j, keys[j]);
            node::set_internal_child(&mut left, j + 1, children[j + 1]);
        }
        node::set_count(&mut left, mid);
        let mut right = vec![0u8; self.pager.page_size()];
        node::init_internal(&mut right);
        node::set_internal_child(&mut right, 0, children[mid + 1]);
        for j in mid + 1..total {
            node::set_internal_key(&mut right, j - mid - 1, keys[j]);
            node::set_internal_child(&mut right, j - mid, children[j + 1]);
        }
        node::set_count(&mut right, total - mid - 1);
        let right_pid = self.pager.allocate();
        self.pager.write(pid, &left);
        self.pager.write(right_pid, &right);
        (old, Some((up_key, right_pid)))
    }

    /// Removes `key`, returning its value if present.
    ///
    /// Uses relaxed deletion: nodes may underflow and empty leaves stay in
    /// place (scans skip them; lookups in them simply miss). Only a root that
    /// loses all separators is collapsed. Full rebalancing on delete buys
    /// little for the workloads here, where deletion only appears in
    /// incremental maintenance, and relaxed deletion keeps the leaf chain
    /// trivially consistent.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        self.invalidate_cache();
        let removed = self.remove_rec(self.root, self.height, key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(&mut self, pid: PageId, level: usize, key: u64) -> Option<u64> {
        let mut page = self.pager.read(pid).to_vec();
        if level == 1 {
            let n = node::count(&page);
            let i = node::leaf_search(&page, key).ok()?;
            let old = node::leaf_value(&page, i);
            node::leaf_close_slot(&mut page, i, n);
            node::set_count(&mut page, n - 1);
            self.pager.write(pid, &page);
            return Some(old);
        }
        // Internal nodes are untouched under relaxed deletion.
        let slot = node::internal_descend(&page, key);
        let child = node::internal_child(&page, slot);
        self.remove_rec(child, level - 1, key)
    }

    /// Iterates over entries whose keys fall in `range`, in key order.
    ///
    /// I/O cost: one counted read per level to locate the first leaf, then
    /// one counted read per visited leaf.
    pub fn range(&self, range: impl RangeBounds<u64>) -> RangeIter<'_> {
        let lo = match range.start_bound() {
            Bound::Included(&k) => k,
            Bound::Excluded(&k) => k.saturating_add(1),
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&k) => Some(k),
            Bound::Excluded(&k) => {
                if k == 0 {
                    return RangeIter { tree: self, page: Vec::new(), idx: 0, hi: None, done: true };
                }
                Some(k - 1)
            }
            Bound::Unbounded => None,
        };
        // Descend to the leaf containing lo.
        let mut pid = self.root;
        loop {
            let page = self.read_page(pid);
            if node::node_type(&page) == TYPE_LEAF {
                let idx = match node::leaf_search(&page, lo) {
                    Ok(i) | Err(i) => i,
                };
                return RangeIter { tree: self, page, idx, hi, done: false };
            }
            pid = node::internal_child(&page, node::internal_descend(&page, lo));
        }
    }

    /// Iterates over every entry in key order.
    pub fn iter(&self) -> RangeIter<'_> {
        self.range(..)
    }
}

/// Iterator over a key range of a [`BPlusTree`]; see [`BPlusTree::range`].
pub struct RangeIter<'a> {
    tree: &'a BPlusTree,
    page: Vec<u8>,
    idx: usize,
    hi: Option<u64>,
    done: bool,
}

impl Iterator for RangeIter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        loop {
            if self.done {
                return None;
            }
            if self.idx < node::count(&self.page) {
                let key = node::leaf_key(&self.page, self.idx);
                if let Some(hi) = self.hi {
                    if key > hi {
                        self.done = true;
                        return None;
                    }
                }
                let value = node::leaf_value(&self.page, self.idx);
                self.idx += 1;
                return Some((key, value));
            }
            let next = node::next_leaf(&self.page);
            if next.is_invalid() {
                self.done = true;
                return None;
            }
            self.page = self.tree.pager.read(next).to_vec();
            self.idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_storage::{IoCategory, IoStats, SharedStats};

    fn tree_with(page_size: usize) -> (BPlusTree, SharedStats) {
        let stats = IoStats::new_shared();
        let pager = Pager::new(page_size, IoCategory::BptreePage, stats.clone());
        (BPlusTree::new(pager), stats)
    }

    #[test]
    fn insert_get_small() {
        let (mut t, _) = tree_with(4096);
        assert_eq!(t.get(1), None);
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(2, 20), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.get(2), Some(20));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn many_inserts_with_tiny_pages_force_deep_splits() {
        // 64-byte pages: leaf cap 3, internal cap 4 — exercises multi-level splits.
        let (mut t, _) = tree_with(64);
        let keys: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 1000).collect();
        let mut inserted = std::collections::BTreeMap::new();
        for &k in &keys {
            let expect = inserted.insert(k, k + 1);
            assert_eq!(t.insert(k, k + 1), expect);
        }
        assert_eq!(t.len(), inserted.len() as u64);
        for (&k, &v) in &inserted {
            assert_eq!(t.get(k), Some(v), "key {k}");
        }
        assert!(t.height() > 2, "tiny pages should force height > 2, got {}", t.height());
        let scanned: Vec<(u64, u64)> = t.iter().collect();
        let expect: Vec<(u64, u64)> = inserted.into_iter().collect();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn descending_inserts_stay_sorted() {
        let (mut t, _) = tree_with(64);
        for k in (0..200u64).rev() {
            t.insert(k, k);
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, (0..200u64).collect::<Vec<_>>());
    }

    #[test]
    fn range_scans_respect_bounds() {
        let (mut t, _) = tree_with(64);
        for k in (0..100u64).map(|i| i * 2) {
            t.insert(k, k);
        }
        let got: Vec<u64> = t.range(10..=20).map(|(k, _)| k).collect();
        assert_eq!(got, vec![10, 12, 14, 16, 18, 20]);
        let got: Vec<u64> = t.range(11..20).map(|(k, _)| k).collect();
        assert_eq!(got, vec![12, 14, 16, 18]);
        let got: Vec<u64> = t.range(..4).map(|(k, _)| k).collect();
        assert_eq!(got, vec![0, 2]);
        let got: Vec<u64> = t.range(196..).map(|(k, _)| k).collect();
        assert_eq!(got, vec![196, 198]);
        assert_eq!(t.range(..0).count(), 0);
        assert_eq!(t.range(300..).count(), 0);
    }

    #[test]
    fn lookups_touch_height_pages() {
        let (mut t, stats) = tree_with(4096);
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        stats.reset();
        assert_eq!(t.get(9_999), Some(9_999));
        assert_eq!(stats.reads(IoCategory::BptreePage), t.height() as u64);
    }

    #[test]
    fn internal_pinning_reduces_counted_reads_to_leaf_only() {
        let (mut t, stats) = tree_with(4096);
        for k in 0..50_000u64 {
            t.insert(k, k);
        }
        assert!(t.height() >= 2);
        t.set_internal_pinning(true);
        // Warm the cache.
        let _ = t.get(1);
        stats.reset();
        for k in (0..50_000u64).step_by(997) {
            assert_eq!(t.get(k), Some(k));
        }
        let lookups = 50_000u64.div_ceil(997);
        let reads = stats.reads(IoCategory::BptreePage);
        // One leaf read per lookup, plus at most a handful of cold internal
        // pages the warm-up path did not touch.
        assert!(
            reads <= lookups + 4,
            "warm pinned lookups should cost ~one leaf read each: {reads} for {lookups}"
        );
        assert!(
            reads < lookups * t.height() as u64,
            "pinning must beat the unpinned cost of height reads per lookup"
        );
        // Mutation drops the cache; lookups still correct.
        t.insert(999_999, 1);
        assert_eq!(t.get(999_999), Some(1));
        assert_eq!(t.get(3), Some(3));
    }

    #[test]
    fn remove_roundtrip() {
        let (mut t, _) = tree_with(64);
        for k in 0..300u64 {
            t.insert(k, k * 2);
        }
        for k in (0..300u64).step_by(2) {
            assert_eq!(t.remove(k), Some(k * 2));
            assert_eq!(t.remove(k), None, "double remove of {k}");
        }
        assert_eq!(t.len(), 150);
        for k in 0..300u64 {
            let expect = if k % 2 == 1 { Some(k * 2) } else { None };
            assert_eq!(t.get(k), expect, "key {k}");
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, (1..300u64).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn remove_everything_leaves_empty_tree() {
        let (mut t, _) = tree_with(64);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        for k in 0..100u64 {
            assert_eq!(t.remove(k), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        // Tree remains usable after total deletion.
        t.insert(5, 50);
        assert_eq!(t.get(5), Some(50));
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let stats = IoStats::new_shared();
        let pager = Pager::new(64, IoCategory::BptreePage, stats);
        let entries: Vec<(u64, u64)> = (0..1000u64).map(|k| (k * 3, k)).collect();
        let t = BPlusTree::bulk_load(pager, entries.iter().copied(), 1.0);
        assert_eq!(t.len(), 1000);
        for &(k, v) in &entries {
            assert_eq!(t.get(k), Some(v));
        }
        assert_eq!(t.get(1), None);
        let scanned: Vec<(u64, u64)> = t.iter().collect();
        assert_eq!(scanned, entries);
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let stats = IoStats::new_shared();
        let pager = Pager::new(4096, IoCategory::BptreePage, stats.clone());
        let t = BPlusTree::bulk_load(pager, std::iter::empty(), 1.0);
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        let pager = Pager::new(4096, IoCategory::BptreePage, stats);
        let t = BPlusTree::bulk_load(pager, [(7u64, 8u64)], 0.5);
        assert_eq!(t.get(7), Some(8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts() {
        let stats = IoStats::new_shared();
        let pager = Pager::new(64, IoCategory::BptreePage, stats);
        let mut t = BPlusTree::bulk_load(pager, (0..100u64).map(|k| (k * 2, k)), 0.7);
        for k in 0..100u64 {
            t.insert(k * 2 + 1, 999);
        }
        assert_eq!(t.len(), 200);
        let keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, (0..200u64).collect::<Vec<_>>());
    }

    #[test]
    fn try_get_surfaces_injected_faults_and_corruption() {
        let (mut t, _) = tree_with(64);
        for k in 0..300u64 {
            t.insert(k, k + 1);
        }
        assert_eq!(t.try_get(42), Ok(Some(43)));
        assert_eq!(t.try_range_collect(10..13), Ok(vec![(10, 11), (11, 12), (12, 13)]));
        // Injected read errors become typed errors, not panics.
        t.pager_mut()
            .set_fault_plan(pcube_storage::FaultPlan::seeded(9).with_read_errors(1.0));
        assert!(matches!(t.try_get(42), Err(StorageError::Io { .. })));
        assert!(t.try_range_collect(..).is_err());
        t.pager_mut().take_fault_plan();
        assert_eq!(t.try_get(42), Ok(Some(43)));
        // A page whose count field is garbage is Malformed, not a panic.
        let root = t.parts().0;
        t.pager_mut().update(root, |p| node::set_count(p, 60_000));
        assert!(matches!(
            t.try_get(42),
            Err(StorageError::Malformed { what: "node count exceeds page capacity", .. })
        ));
    }

    #[test]
    fn try_range_collect_matches_iter() {
        let (mut t, _) = tree_with(64);
        for k in 0..500u64 {
            t.insert(k * 3, k);
        }
        let via_iter: Vec<(u64, u64)> = t.range(100..=1000).collect();
        assert_eq!(t.try_range_collect(100..=1000), Ok(via_iter));
        let all: Vec<(u64, u64)> = t.iter().collect();
        assert_eq!(t.try_range_collect(..), Ok(all));
    }

    #[test]
    #[should_panic]
    fn bulk_load_rejects_unsorted() {
        let stats = IoStats::new_shared();
        let pager = Pager::new(4096, IoCategory::BptreePage, stats);
        let _ = BPlusTree::bulk_load(pager, [(2u64, 0u64), (1, 0)], 1.0);
    }
}
