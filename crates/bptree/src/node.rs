//! On-page node layout for the B+-tree.
//!
//! Leaf page:    `[type:u8][count:u16][next:u32]` then `count` entries of
//!               `key:u64, value:u64` (16 bytes each) starting at byte 8.
//! Internal page:`[type:u8][count:u16][pad]` then `child0:u32` at byte 8 and
//!               `count` entries of `key:u64, child:u32` (12 bytes each)
//!               starting at byte 12. Child `i` covers keys `< keys[i]`,
//!               child `count` covers the rest.

use pcube_storage::{read_u16, read_u32, read_u64, write_u16, write_u32, write_u64, PageId};

pub const TYPE_LEAF: u8 = 0;
pub const TYPE_INTERNAL: u8 = 1;

const LEAF_HEADER: usize = 8;
const LEAF_ENTRY: usize = 16;
const INTERNAL_HEADER: usize = 12;
const INTERNAL_ENTRY: usize = 12;

/// Maximum number of `(key, value)` entries in a leaf of `page_size` bytes.
pub fn leaf_capacity(page_size: usize) -> usize {
    let cap = (page_size - LEAF_HEADER) / LEAF_ENTRY;
    assert!(cap >= 3, "page too small for a useful B+-tree leaf");
    cap
}

/// Maximum number of separator keys in an internal node of `page_size` bytes.
pub fn internal_capacity(page_size: usize) -> usize {
    let cap = (page_size - INTERNAL_HEADER) / INTERNAL_ENTRY;
    assert!(cap >= 3, "page too small for a useful B+-tree internal node");
    cap
}

pub fn node_type(page: &[u8]) -> u8 {
    page[0]
}

pub fn count(page: &[u8]) -> usize {
    read_u16(page, 1) as usize
}

pub fn set_count(page: &mut [u8], n: usize) {
    write_u16(page, 1, u16::try_from(n).expect("node count fits u16"));
}

pub fn init_leaf(page: &mut [u8]) {
    page[0] = TYPE_LEAF;
    set_count(page, 0);
    set_next_leaf(page, PageId::INVALID);
}

pub fn init_internal(page: &mut [u8]) {
    page[0] = TYPE_INTERNAL;
    set_count(page, 0);
}

// ---- leaf accessors ----

pub fn next_leaf(page: &[u8]) -> PageId {
    PageId(read_u32(page, 3))
}

pub fn set_next_leaf(page: &mut [u8], pid: PageId) {
    write_u32(page, 3, pid.0);
}

pub fn leaf_key(page: &[u8], i: usize) -> u64 {
    read_u64(page, LEAF_HEADER + i * LEAF_ENTRY)
}

pub fn leaf_value(page: &[u8], i: usize) -> u64 {
    read_u64(page, LEAF_HEADER + i * LEAF_ENTRY + 8)
}

pub fn set_leaf_entry(page: &mut [u8], i: usize, key: u64, value: u64) {
    write_u64(page, LEAF_HEADER + i * LEAF_ENTRY, key);
    write_u64(page, LEAF_HEADER + i * LEAF_ENTRY + 8, value);
}

/// Shifts leaf entries `[i..count)` right by one to open slot `i`.
pub fn leaf_open_slot(page: &mut [u8], i: usize, n: usize) {
    let start = LEAF_HEADER + i * LEAF_ENTRY;
    let end = LEAF_HEADER + n * LEAF_ENTRY;
    page.copy_within(start..end, start + LEAF_ENTRY);
}

/// Shifts leaf entries `[i+1..count)` left by one, removing slot `i`.
pub fn leaf_close_slot(page: &mut [u8], i: usize, n: usize) {
    let start = LEAF_HEADER + (i + 1) * LEAF_ENTRY;
    let end = LEAF_HEADER + n * LEAF_ENTRY;
    page.copy_within(start..end, start - LEAF_ENTRY);
}

/// Binary search for `key` among the leaf's entries: `Ok(i)` if present at
/// `i`, `Err(i)` for its insertion point.
pub fn leaf_search(page: &[u8], key: u64) -> Result<usize, usize> {
    let n = count(page);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(page, mid).cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

// ---- internal accessors ----

pub fn internal_key(page: &[u8], i: usize) -> u64 {
    read_u64(page, INTERNAL_HEADER + i * INTERNAL_ENTRY)
}

pub fn internal_child(page: &[u8], i: usize) -> PageId {
    if i == 0 {
        PageId(read_u32(page, 8))
    } else {
        PageId(read_u32(page, INTERNAL_HEADER + (i - 1) * INTERNAL_ENTRY + 8))
    }
}

pub fn set_internal_child(page: &mut [u8], i: usize, pid: PageId) {
    if i == 0 {
        write_u32(page, 8, pid.0);
    } else {
        write_u32(page, INTERNAL_HEADER + (i - 1) * INTERNAL_ENTRY + 8, pid.0);
    }
}

pub fn set_internal_key(page: &mut [u8], i: usize, key: u64) {
    write_u64(page, INTERNAL_HEADER + i * INTERNAL_ENTRY, key);
}

/// Opens key slot `i` (and the child slot to its right) in an internal node
/// with `n` keys.
pub fn internal_open_slot(page: &mut [u8], i: usize, n: usize) {
    let start = INTERNAL_HEADER + i * INTERNAL_ENTRY;
    let end = INTERNAL_HEADER + n * INTERNAL_ENTRY;
    page.copy_within(start..end, start + INTERNAL_ENTRY);
}

/// Index of the child subtree that covers `key`.
pub fn internal_descend(page: &[u8], key: u64) -> usize {
    let n = count(page);
    let mut lo = 0usize;
    let mut hi = n;
    // First key strictly greater than `key`; child index equals that position.
    while lo < hi {
        let mid = (lo + hi) / 2;
        if internal_key(page, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_paper_page_size() {
        // 4 KB pages: 255 leaf entries, 340 internal separators.
        assert_eq!(leaf_capacity(4096), 255);
        assert_eq!(internal_capacity(4096), 340);
    }

    #[test]
    fn leaf_layout_roundtrip() {
        let mut page = vec![0u8; 256];
        init_leaf(&mut page);
        assert_eq!(node_type(&page), TYPE_LEAF);
        assert!(next_leaf(&page).is_invalid());
        set_leaf_entry(&mut page, 0, 10, 100);
        set_leaf_entry(&mut page, 1, 20, 200);
        set_count(&mut page, 2);
        leaf_open_slot(&mut page, 1, 2);
        set_leaf_entry(&mut page, 1, 15, 150);
        set_count(&mut page, 3);
        assert_eq!(
            (0..3).map(|i| (leaf_key(&page, i), leaf_value(&page, i))).collect::<Vec<_>>(),
            vec![(10, 100), (15, 150), (20, 200)]
        );
        leaf_close_slot(&mut page, 0, 3);
        set_count(&mut page, 2);
        assert_eq!(leaf_key(&page, 0), 15);
    }

    #[test]
    fn leaf_search_finds_positions() {
        let mut page = vec![0u8; 256];
        init_leaf(&mut page);
        for (i, k) in [10u64, 20, 30].iter().enumerate() {
            set_leaf_entry(&mut page, i, *k, 0);
        }
        set_count(&mut page, 3);
        assert_eq!(leaf_search(&page, 20), Ok(1));
        assert_eq!(leaf_search(&page, 5), Err(0));
        assert_eq!(leaf_search(&page, 25), Err(2));
        assert_eq!(leaf_search(&page, 35), Err(3));
    }

    #[test]
    fn internal_descend_routes_by_separator() {
        let mut page = vec![0u8; 256];
        init_internal(&mut page);
        set_internal_child(&mut page, 0, PageId(100));
        set_internal_key(&mut page, 0, 10);
        set_internal_child(&mut page, 1, PageId(101));
        set_internal_key(&mut page, 1, 20);
        set_internal_child(&mut page, 2, PageId(102));
        set_count(&mut page, 2);
        assert_eq!(internal_descend(&page, 5), 0);
        assert_eq!(internal_descend(&page, 10), 1); // separator key goes right
        assert_eq!(internal_descend(&page, 15), 1);
        assert_eq!(internal_descend(&page, 20), 2);
        assert_eq!(internal_descend(&page, 99), 2);
        assert_eq!(internal_child(&page, 0), PageId(100));
        assert_eq!(internal_child(&page, 2), PageId(102));
    }
}
