//! Model-based property tests: the disk B+-tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences.
//!
//! Runs are fully reproducible: the vendored proptest derives its RNG seed
//! deterministically from the test's module path and name (override with
//! `PROPTEST_SEED`), so every CI run replays the identical case sequence.

use pcube_bptree::BPlusTree;
use pcube_storage::{IoCategory, IoStats, Pager};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // A small key universe provokes collisions, overwrites and removals of
    // present keys.
    let key = 0u64..200;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        key.clone().prop_map(Op::Get),
        (key.clone(), key).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_btreemap(ops in prop::collection::vec(arb_op(), 1..400), page in prop_oneof![Just(64usize), Just(128), Just(4096)]) {
        let pager = Pager::new(page, IoCategory::BptreePage, IoStats::new_shared());
        let mut tree = BPlusTree::new(pager);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(&k).copied());
                }
                Op::Range(lo, hi) => {
                    let got: Vec<(u64, u64)> = tree.range(lo..=hi).collect();
                    let expect: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
        let scanned: Vec<(u64, u64)> = tree.iter().collect();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    #[test]
    fn bulk_load_equals_inserts(mut keys in prop::collection::btree_set(any::<u64>(), 0..500), fill in 0.3f64..=1.0) {
        keys.remove(&u64::MAX); // keep key+1 arithmetic simple below
        let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 0xFF)).collect();
        let pager = Pager::new(128, IoCategory::BptreePage, IoStats::new_shared());
        let bulk = BPlusTree::bulk_load(pager, entries.iter().copied(), fill);
        prop_assert_eq!(bulk.len(), entries.len() as u64);
        for &(k, v) in &entries {
            prop_assert_eq!(bulk.get(k), Some(v));
            prop_assert_eq!(bulk.get(k + 1).is_some(), keys.contains(&(k + 1)));
        }
        let scanned: Vec<(u64, u64)> = bulk.iter().collect();
        prop_assert_eq!(scanned, entries);
    }
}
