//! A tiny interactive shell over the SQL front end: builds the used-car
//! database (or opens a saved image) and answers `SELECT SKYLINE …` /
//! `SELECT TOP k …` statements plus the session directives
//! `SET DEADLINE_MS n`, `SET MAX_BLOCKS n`, `CANCEL` and `RESET`.
//!
//! Run with: `cargo run --release --example sql_repl [path/to/image.pcube]`
//! Pipe statements in, or type interactively (empty line or `quit` exits):
//!
//! ```text
//! echo "select top 5 from cars where type = 'sedan' order by price" \
//!     | cargo run --release --example sql_repl
//! ```
//!
//! With a path argument the shell opens a database saved with
//! `PCubeDb::save`. A missing, truncated or corrupt image is reported as
//! a rendered persist error naming the failing section and byte offset —
//! never a panic.

use pcube::prelude::*;
use pcube::sql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Write};

/// The demo dataset: 20k used cars with three boolean and two preference
/// dimensions, as in the paper's running example.
fn build_cars() -> PCubeDb {
    let mut rng = StdRng::seed_from_u64(2008);
    let mut cars = Relation::new(Schema::new(&["type", "maker", "color"], &["price", "mileage"]));
    let types = ["sedan", "suv", "coupe", "truck"];
    let makers = ["toyota", "honda", "ford", "bmw"];
    let colors = ["red", "blue", "white", "black"];
    for _ in 0..20_000 {
        let t = types[rng.gen_range(0..types.len())];
        let m = makers[rng.gen_range(0..makers.len())];
        let c = colors[rng.gen_range(0..colors.len())];
        let age: f64 = rng.gen();
        let price = ((1.0 - age) * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        let mileage = (age * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        cars.push(&[t, m, c], &[price, mileage]);
    }
    PCubeDb::build(cars, &PCubeConfig::default())
}

fn main() {
    let db = match std::env::args().nth(1) {
        // A malformed or corrupt image must surface as the typed persist
        // error — section, byte offset, cause — not a panic.
        Some(path) => match PCubeDb::open(&path) {
            Ok(db) => {
                println!("opened {path}");
                db
            }
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        },
        None => build_cars(),
    };
    let schema = db.relation().schema();
    let bools: Vec<&str> = (0..schema.n_bool()).map(|d| schema.bool_name(d)).collect();
    let prefs: Vec<&str> = (0..schema.n_pref()).map(|d| schema.pref_name(d)).collect();
    println!(
        "pcube sql shell — {} rows; boolean: {}; preference: {}",
        db.relation().len(),
        bools.join(", "),
        prefs.join(", "),
    );
    println!("example: select top 5 from r where {} = '…' order by {}",
        bools.first().copied().unwrap_or("dim"),
        prefs.first().copied().unwrap_or("dim"));
    println!("session: SET DEADLINE_MS n | SET MAX_BLOCKS n | CANCEL | RESET");

    let mut session = sql::SqlSession::new();
    let stdin = std::io::stdin();
    loop {
        print!("pcube> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() || line.eq_ignore_ascii_case("quit") {
            break;
        }
        match session.run(&db, line) {
            Err(e) => println!("{e}"),
            Ok(sql::SessionReply::Ack(msg)) => println!("  {msg}"),
            Ok(sql::SessionReply::Rows(out)) => {
                for row in out.rows.iter().take(20) {
                    let score = row.score.map(|s| format!("  score {s:.5}")).unwrap_or_default();
                    let coords: Vec<String> =
                        row.coords.iter().map(|c| format!("{c:.3}")).collect();
                    println!(
                        "  tid {:<6} {}  [{}]{}",
                        row.tid,
                        row.bool_values.join(" "),
                        coords.join(", "),
                        score
                    );
                }
                if out.rows.len() > 20 {
                    println!("  … and {} more rows", out.rows.len() - 20);
                }
                println!(
                    "  ({} rows; {} R-tree blocks, {} signature pages, peak heap {})",
                    out.rows.len(),
                    out.stats.io.reads(IoCategory::RtreeBlock),
                    out.stats.io.reads(IoCategory::SignaturePage),
                    out.stats.peak_heap
                );
                if let Some(notice) = sql::render_outcome(&out.stats) {
                    println!("  {notice}");
                }
                if let Some(plan) = sql::explain_plan(&out.stats) {
                    for line in plan.lines() {
                        println!("  {line}");
                    }
                }
            }
        }
    }
}
