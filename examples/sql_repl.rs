//! A tiny interactive shell over the SQL front end: builds the used-car
//! database (or opens a saved image) and answers `SELECT SKYLINE …` /
//! `SELECT TOP k …` statements plus the session directives
//! `SET DEADLINE_MS n`, `SET MAX_BLOCKS n`, `CANCEL` and `RESET`.
//!
//! Run with: `cargo run --release --example sql_repl [path/to/image.pcube]`
//! Pipe statements in, or type interactively (empty line or `quit` exits):
//!
//! ```text
//! echo "select top 5 from cars where type = 'sedan' order by price" \
//!     | cargo run --release --example sql_repl
//! ```
//!
//! With a path argument the shell opens a database saved with
//! `PCubeDb::save`. A missing, truncated or corrupt image is reported as
//! a rendered persist error naming the failing section and byte offset —
//! never a panic.
//!
//! With `--durable <dir>` the shell opens (or creates) a crash-safe
//! database under `<dir>`: a dirty shutdown is recovered by WAL replay and
//! the `RecoveryReport` is printed — records replayed, pages repaired,
//! torn tail dropped — instead of panicking. The extra `CHECKPOINT`
//! directive flushes dirty pages and truncates the log.
//!
//! Self-healing at the prompt: `STATS` prints the I/O ledger (including
//! `degraded_reads` and the quarantine counters), `SCRUB` runs an online
//! integrity pass under the session budget, and — durable shells only —
//! `REPAIR` rebuilds quarantined signature pages from the base table
//! through the WAL.

use pcube::prelude::*;
use pcube::sql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Write};

/// The demo dataset: 20k used cars with three boolean and two preference
/// dimensions, as in the paper's running example.
fn cars_relation() -> Relation {
    let mut rng = StdRng::seed_from_u64(2008);
    let mut cars = Relation::new(Schema::new(&["type", "maker", "color"], &["price", "mileage"]));
    let types = ["sedan", "suv", "coupe", "truck"];
    let makers = ["toyota", "honda", "ford", "bmw"];
    let colors = ["red", "blue", "white", "black"];
    for _ in 0..20_000 {
        let t = types[rng.gen_range(0..types.len())];
        let m = makers[rng.gen_range(0..makers.len())];
        let c = colors[rng.gen_range(0..colors.len())];
        let age: f64 = rng.gen();
        let price = ((1.0 - age) * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        let mileage = (age * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        cars.push(&[t, m, c], &[price, mileage]);
    }
    cars
}

fn build_cars() -> PCubeDb {
    PCubeDb::build(cars_relation(), &PCubeConfig::default())
}

/// How the shell holds its database: read-only, or under the durable
/// engine (WAL + checkpoints + `CHECKPOINT` directive).
enum Shell {
    ReadOnly(Box<PCubeDb>),
    Durable(Box<DurableDb>),
}

impl Shell {
    fn db(&self) -> &PCubeDb {
        match self {
            Shell::ReadOnly(db) => db,
            Shell::Durable(db) => db.db(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = match args.first().map(String::as_str) {
        // Crash-safe mode: recover (or create) a durable database. A dirty
        // shutdown surfaces as a typed RecoveryReport, not a panic.
        Some("--durable") => {
            let Some(dir) = args.get(1) else {
                eprintln!("usage: sql_repl --durable <dir> [--fsync-every N]");
                std::process::exit(2);
            };
            let mut opts = DurabilityOptions::default();
            // Group-commit window: fsync once per N commits instead of per
            // commit. Commits inside the window report `durable: false`
            // until the window's fsync lands.
            if let Some(flag) = args.iter().position(|a| a == "--fsync-every") {
                let every = args.get(flag + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fsync-every needs a number of commits");
                    std::process::exit(2);
                });
                opts.fsync_every = every;
            }
            if std::path::Path::new(dir).join("checkpoint.pcube").exists() {
                match DurableDb::open_or_recover(dir, opts) {
                    Ok((db, report)) => {
                        println!("opened {dir} — {report}");
                        Shell::Durable(Box::new(db))
                    }
                    Err(e) => {
                        eprintln!("cannot recover {dir}: {e}");
                        std::process::exit(1);
                    }
                }
            } else {
                match DurableDb::create_at(dir, cars_relation(), &PCubeConfig::default(), opts) {
                    Ok(db) => {
                        println!("created durable database at {dir}");
                        Shell::Durable(Box::new(db))
                    }
                    Err(e) => {
                        eprintln!("cannot create {dir}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        // A malformed or corrupt image must surface as the typed persist
        // error — section, byte offset, cause — not a panic.
        Some(path) => match PCubeDb::open(path) {
            Ok(db) => {
                println!("opened {path}");
                Shell::ReadOnly(Box::new(db))
            }
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        },
        None => Shell::ReadOnly(Box::new(build_cars())),
    };
    let (n_rows, bools, prefs) = {
        let db = shell.db();
        let schema = db.relation().schema();
        let bools: Vec<String> =
            (0..schema.n_bool()).map(|d| schema.bool_name(d).to_owned()).collect();
        let prefs: Vec<String> =
            (0..schema.n_pref()).map(|d| schema.pref_name(d).to_owned()).collect();
        (db.relation().len(), bools, prefs)
    };
    println!(
        "pcube sql shell — {} rows; boolean: {}; preference: {}",
        n_rows,
        bools.join(", "),
        prefs.join(", "),
    );
    println!("example: select top 5 from r where {} = '…' order by {}",
        bools.first().map(String::as_str).unwrap_or("dim"),
        prefs.first().map(String::as_str).unwrap_or("dim"));
    print!("session: SET DEADLINE_MS n | SET MAX_BLOCKS n | CANCEL | RESET | STATS | SCRUB");
    if matches!(shell, Shell::Durable(_)) {
        print!(" | REPAIR | CHECKPOINT");
    }
    println!();

    let mut session = sql::SqlSession::new();
    let stdin = std::io::stdin();
    loop {
        print!("pcube> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() || line.eq_ignore_ascii_case("quit") {
            break;
        }
        let reply = match &mut shell {
            Shell::ReadOnly(db) => session.run(db, line),
            Shell::Durable(db) => session.run_durable(db, line),
        };
        match reply {
            Err(e) => println!("{e}"),
            Ok(sql::SessionReply::Ack(msg)) => println!("  {msg}"),
            Ok(sql::SessionReply::Rows(out)) => {
                for row in out.rows.iter().take(20) {
                    let score = row.score.map(|s| format!("  score {s:.5}")).unwrap_or_default();
                    let coords: Vec<String> =
                        row.coords.iter().map(|c| format!("{c:.3}")).collect();
                    println!(
                        "  tid {:<6} {}  [{}]{}",
                        row.tid,
                        row.bool_values.join(" "),
                        coords.join(", "),
                        score
                    );
                }
                if out.rows.len() > 20 {
                    println!("  … and {} more rows", out.rows.len() - 20);
                }
                println!(
                    "  ({} rows; {} R-tree blocks, {} signature pages, peak heap {})",
                    out.rows.len(),
                    out.stats.io.reads(IoCategory::RtreeBlock),
                    out.stats.io.reads(IoCategory::SignaturePage),
                    out.stats.peak_heap
                );
                if let Some(notice) = sql::render_outcome(&out.stats) {
                    println!("  {notice}");
                }
                if let Some(plan) = sql::explain_plan(&out.stats) {
                    for line in plan.lines() {
                        println!("  {line}");
                    }
                }
            }
        }
    }
}
