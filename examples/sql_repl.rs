//! A tiny interactive shell over the SQL front end: builds the used-car
//! database and answers `SELECT SKYLINE …` / `SELECT TOP k …` statements.
//!
//! Run with: `cargo run --release --example sql_repl`
//! Pipe statements in, or type interactively (empty line or `quit` exits):
//!
//! ```text
//! echo "select top 5 from cars where type = 'sedan' order by price" \
//!     | cargo run --release --example sql_repl
//! ```

use pcube::prelude::*;
use pcube::sql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Write};

fn main() {
    let mut rng = StdRng::seed_from_u64(2008);
    let mut cars = Relation::new(Schema::new(&["type", "maker", "color"], &["price", "mileage"]));
    let types = ["sedan", "suv", "coupe", "truck"];
    let makers = ["toyota", "honda", "ford", "bmw"];
    let colors = ["red", "blue", "white", "black"];
    for _ in 0..20_000 {
        let t = types[rng.gen_range(0..types.len())];
        let m = makers[rng.gen_range(0..makers.len())];
        let c = colors[rng.gen_range(0..colors.len())];
        let age: f64 = rng.gen();
        let price = ((1.0 - age) * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        let mileage = (age * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        cars.push(&[t, m, c], &[price, mileage]);
    }
    let db = PCubeDb::build(cars, &PCubeConfig::default());
    println!(
        "pcube sql shell — table `cars` ({} rows; boolean: type, maker, color; \
         preference: price, mileage)",
        db.relation().len()
    );
    println!("example: select top 5 from cars where color = 'red' order by price + 0.5 * mileage");

    let stdin = std::io::stdin();
    loop {
        print!("pcube> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() || line.eq_ignore_ascii_case("quit") {
            break;
        }
        match sql::execute(&db, line) {
            Err(e) => println!("{e}"),
            Ok(out) => {
                for row in out.rows.iter().take(20) {
                    let score = row.score.map(|s| format!("  score {s:.5}")).unwrap_or_default();
                    println!(
                        "  tid {:<6} {:<7} {:<7} {:<6} price {:.3} mileage {:.3}{}",
                        row.tid,
                        row.bool_values[0],
                        row.bool_values[1],
                        row.bool_values[2],
                        row.coords[0],
                        row.coords[1],
                        score
                    );
                }
                if out.rows.len() > 20 {
                    println!("  … and {} more rows", out.rows.len() - 20);
                }
                println!(
                    "  ({} rows; {} R-tree blocks, {} signature pages, peak heap {})",
                    out.rows.len(),
                    out.stats.io.reads(IoCategory::RtreeBlock),
                    out.stats.io.reads(IoCategory::SignaturePage),
                    out.stats.peak_heap
                );
                if let Some(plan) = sql::explain_plan(&out.stats) {
                    for line in plan.lines() {
                        println!("  {line}");
                    }
                }
            }
        }
    }
}
