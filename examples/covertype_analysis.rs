//! OLAP-style preference analysis on the Forest CoverType surrogate
//! (§VI-B.4 workload): skylines under 1–4 boolean predicates, executed as a
//! chain of drill-downs, with per-step I/O accounting.
//!
//! Run with: `cargo run --release --example covertype_analysis`
//! (pass `--full` for the paper-scale 581,012 rows; default is 50k)

use pcube::core::skyline_drill_down;
use pcube::data::covertype_surrogate;
use pcube::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let rows = if full { pcube::data::COVERTYPE_ROWS } else { 50_000 };
    println!("building CoverType surrogate with {rows} rows …");
    let relation = covertype_surrogate(rows, 4242);
    let db = PCubeDb::build(relation, &PCubeConfig::default());
    println!(
        "P-Cube ready: {} cells over 12 boolean dims, R-tree height {}, \
         signatures {:.1} MB",
        db.pcube().registry().len(),
        db.rtree().height(),
        db.pcube().size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Drill from 1 to 4 predicates along the values of a random row (so the
    // chain never empties), tracking incremental cost.
    let mut rng = StdRng::seed_from_u64(7);
    let anchor = rng.gen_range(0..db.relation().len() as u64);
    let pref_dims = [0, 1, 2];

    let first_pred = Predicate { dim: 0, value: db.relation().bool_code(anchor, 0) };
    let mut outcome = skyline_query(&db, &vec![first_pred], &pref_dims, false);
    println!(
        "\n1 predicate : skyline {} points, {} blocks, {} signature pages",
        outcome.skyline.len(),
        outcome.stats.io.reads(IoCategory::RtreeBlock),
        outcome.stats.io.reads(IoCategory::SignaturePage),
    );

    for dim in 1..4usize {
        let extra = Predicate { dim, value: db.relation().bool_code(anchor, dim) };
        outcome = skyline_drill_down(&db, outcome.state, extra);
        println!(
            "{} predicates: skyline {} points, {} blocks, {} signature pages (drill-down)",
            dim + 1,
            outcome.skyline.len(),
            outcome.stats.io.reads(IoCategory::RtreeBlock),
            outcome.stats.io.reads(IoCategory::SignaturePage),
        );
    }

    // Show the final answer with decoded boolean context.
    println!("\nfinal skyline under 4 predicates (elevation, horiz_dist, vert_dist):");
    for (tid, coords) in outcome.skyline.iter().take(10) {
        println!("  tid {tid:<7} ({:.3}, {:.3}, {:.3})", coords[0], coords[1], coords[2]);
    }
    if outcome.skyline.len() > 10 {
        println!("  … and {} more", outcome.skyline.len() - 10);
    }
}
