//! Quickstart: build a P-Cube over a small table, run a skyline and a top-k
//! query with boolean predicates, and insert a new row incrementally.
//!
//! Run with: `cargo run --release --example quickstart`

use pcube::prelude::*;

fn main() {
    // Boolean dimensions (equality predicates) + preference dimensions
    // (smaller is better).
    let mut cars = Relation::new(Schema::new(&["type", "color"], &["price", "mileage"]));
    let rows: &[(&str, &str, f64, f64)] = &[
        ("sedan", "red", 0.30, 0.20),
        ("sedan", "blue", 0.10, 0.90),
        ("suv", "red", 0.20, 0.40),
        ("sedan", "red", 0.25, 0.35),
        ("sedan", "red", 0.90, 0.80),
        ("suv", "blue", 0.55, 0.15),
        ("sedan", "blue", 0.40, 0.10),
    ];
    for (t, c, price, mileage) in rows {
        cars.push(&[t, c], &[*price, *mileage]);
    }

    // Build the shared R-tree partition and the signature cube.
    let mut db = PCubeDb::build(cars, &PCubeConfig::default());
    println!(
        "built P-Cube: {} rows, R-tree height {}, {} signature cells",
        db.relation().len(),
        db.rtree().height(),
        db.pcube().registry().len()
    );

    // Skyline of red sedans over (price, mileage).
    let sel = db.selection(&[("type", "sedan"), ("color", "red")]);
    let out = skyline_query(&db, &sel, &[0, 1], false);
    println!("\nskyline of red sedans (price, mileage):");
    for (tid, coords) in &out.skyline {
        println!("  tid {tid}: price {:.2}, mileage {:.2}", coords[0], coords[1]);
    }
    println!(
        "  [{} R-tree blocks read, peak heap {}]",
        out.stats.io.reads(IoCategory::RtreeBlock),
        out.stats.peak_heap
    );

    // Top-2 red sedans nearest the preference point (0.25, 0.30).
    let f = WeightedDistanceFn::new(vec![0.25, 0.30], vec![1.0, 1.0]);
    let top = topk_query(&db, &sel, 2, &f, false);
    println!("\ntop-2 red sedans near price 0.25 / mileage 0.30:");
    for (tid, coords, score) in &top.topk {
        println!("  tid {tid}: ({:.2}, {:.2}) score {score:.4}", coords[0], coords[1]);
    }

    // Incremental maintenance: a new bargain appears.
    let tid = db.insert(&["sedan", "red"], &[0.05, 0.05]);
    println!("\ninserted tid {tid} (red sedan at 0.05/0.05); signatures updated in place");
    let out = skyline_query(&db, &sel, &[0, 1], false);
    let tids: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
    println!("new skyline tids: {tids:?}");
    assert!(tids.contains(&tid), "the new bargain must join the skyline");
}
