//! The paper's Example 1 at scale: multi-dimensional top-k over a used-car
//! database. A buyer wants `type = sedan AND color = red` ranked by
//! `(price − 15k)² + α·(mileage − 30k)²`, and we compare the P-Cube search
//! against the boolean-first and ranking-first execution plans.
//!
//! Run with: `cargo run --release --example used_cars`

use pcube::baselines::{ranking_topk, BooleanIndexSet};
use pcube::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TYPES: &[&str] = &["sedan", "suv", "coupe", "truck", "wagon"];
const MAKERS: &[&str] = &["toyota", "honda", "ford", "bmw", "kia", "volvo", "fiat", "mazda"];
const COLORS: &[&str] = &["red", "blue", "white", "black", "silver", "green"];

fn main() {
    // 50k listings: price and mileage normalized to [0, 1) where 1.0 means
    // $50k / 200k miles.
    let mut rng = StdRng::seed_from_u64(2008);
    let mut cars = Relation::new(Schema::new(&["type", "maker", "color"], &["price", "mileage"]));
    for _ in 0..50_000 {
        let ty = TYPES[rng.gen_range(0..TYPES.len())];
        let maker = MAKERS[rng.gen_range(0..MAKERS.len())];
        let color = COLORS[rng.gen_range(0..COLORS.len())];
        // Older cars are cheaper and have more miles: anti-correlated.
        let age: f64 = rng.gen();
        let price = ((1.0 - age) * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        let mileage = (age * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        cars.push(&[ty, maker, color], &[price, mileage]);
    }

    let db = PCubeDb::build(cars, &PCubeConfig::default());
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    println!(
        "inventory: {} cars | P-Cube: {} cells, {:.1} KB of signatures",
        db.relation().len(),
        db.pcube().registry().len(),
        db.pcube().size_bytes() as f64 / 1024.0
    );

    // "select top 10 used cars where type = sedan and color = red
    //  order by (price − 15k)² + α(mileage − 30k)²" with α = 0.5.
    let sel = db.selection(&[("type", "sedan"), ("color", "red")]);
    let target = vec![15_000.0 / 50_000.0, 30_000.0 / 200_000.0];
    let f = WeightedDistanceFn::new(target, vec![1.0, 0.5]);
    let cost = CostModel::default();

    println!("\ntop-10 red sedans near $15k / 30k miles:");
    let sig = topk_query(&db, &sel, 10, &f, false);
    for (i, (tid, coords, score)) in sig.topk.iter().enumerate() {
        println!(
            "  #{:<2} tid {tid:<6} ${:<6.0} {:>6.0} mi  (score {score:.5})",
            i + 1,
            coords[0] * 50_000.0,
            coords[1] * 200_000.0
        );
    }

    // The same query under the three execution plans.
    db.stats().reset();
    let sig = topk_query(&db, &sel, 10, &f, false);
    db.stats().reset();
    let boolean = indexes.topk(&db, &sel, 10, &f);
    db.stats().reset();
    let (rank_top, rank_stats) = ranking_topk(&db, &sel, 10, &f);
    assert_eq!(sig.topk.len(), 10);
    assert_eq!(boolean.topk.len(), 10);
    assert_eq!(rank_top.len(), 10);

    println!("\nexecution plan comparison (modeled disk seconds, default 2008-era disk):");
    println!(
        "  {:<12} {:>10} {:>12} {:>12} {:>12}",
        "plan", "modeled s", "rtree blocks", "tuple probes", "peak heap"
    );
    for (name, stats) in
        [("Signature", &sig.stats), ("Boolean", &boolean.stats), ("Ranking", &rank_stats)]
    {
        println!(
            "  {:<12} {:>10.3} {:>12} {:>12} {:>12}",
            name,
            cost.seconds(&stats.io) + stats.cpu_seconds,
            stats.io.reads(IoCategory::RtreeBlock),
            stats.io.reads(IoCategory::TupleRandomAccess),
            stats.peak_heap
        );
    }
    println!("\n(Signature pushes both prunings into one search: no tuple probes and");
    println!(" the smallest candidate heap. At this toy scale a sequential table scan");
    println!(" is still cheap for Boolean; the bench harness (`report fig13`) shows the");
    println!(" paper's order-of-magnitude gap emerging as T grows.)");
}
