//! Prioritized preferences over the used-car inventory: "price matters
//! more than mileage — a cheaper car wins even if it has more miles" is a
//! p-skyline (Mindolin & Chomicki) with the priority edge
//! `price OVER mileage`, and "just show me the price/age trade-off" is a
//! subspace skyline. Both run as *plugged-in query classes* through the
//! same Algorithm-1 kernel, the parallel fan-out, the SQL front end, and
//! the §VI cost-based planner — none of which name them explicitly.
//!
//! Run with: `cargo run --release --example prioritized_cars`

use pcube::prelude::*;
use pcube::sql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TYPES: &[&str] = &["sedan", "suv", "coupe", "truck", "wagon"];
const COLORS: &[&str] = &["red", "blue", "white", "black", "silver", "green"];

fn main() {
    // 30k listings; price, mileage, age normalized to [0, 1).
    let mut rng = StdRng::seed_from_u64(2008);
    let mut cars =
        Relation::new(Schema::new(&["type", "color"], &["price", "mileage", "age"]));
    for _ in 0..30_000 {
        let ty = TYPES[rng.gen_range(0..TYPES.len())];
        let color = COLORS[rng.gen_range(0..COLORS.len())];
        let age: f64 = rng.gen();
        let price = ((1.0 - age) * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        let mileage = (age * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        cars.push(&[ty, color], &[price, mileage, age]);
    }
    let db = PCubeDb::build(cars, &PCubeConfig::default());
    let sel = db.selection(&[("type", "sedan"), ("color", "red")]);

    // Pareto skyline vs p-skyline: prioritizing price shrinks the answer,
    // because a price advantage now excuses a mileage disadvantage.
    let pareto = skyline_query(&db, &sel, &[0, 1], false);
    let graph = PriorityGraph::new(vec![0, 1], &[(0, 1)]).expect("a single edge is a DAG");
    let prioritized = db.pskyline(&sel, &graph);
    println!(
        "red sedans: {} on the Pareto skyline (price, mileage), {} after PRIORITIZE price OVER mileage",
        pareto.skyline.len(),
        prioritized.rows.len()
    );
    for (tid, coords) in prioritized.rows.iter().take(5) {
        println!(
            "  tid {tid:<6} ${:<6.0} {:>6.0} mi",
            coords[0] * 50_000.0,
            coords[1] * 200_000.0
        );
    }

    // The parallel fan-out answers bit-identically.
    let par = db.par_pskyline(&sel, &graph, ParallelOptions::with_workers(4));
    assert_eq!(par.rows, prioritized.rows);
    println!("parallel (4 workers) returned the identical p-skyline");

    // The same query in SQL, EXPLAIN-routed through the cost-based
    // planner: the plan names the class and the chosen engine.
    let stmt = "explain select skyline of price, mileage from cars \
                where type = 'sedan' and color = 'red' \
                prioritize price over mileage";
    let out = sql::execute(&db, stmt).expect("valid statement");
    println!("\n{stmt}\n-> {} rows", out.rows.len());
    print!("{}", sql::explain_plan(&out.stats).expect("EXPLAIN records a plan"));
    assert_eq!(out.rows.len(), prioritized.rows.len());

    // Subspace skyline on (price, age): distinct-value semantics — each
    // projected point appears once even when several cars share it.
    let stmt = "explain select skyline in subspace (price, age) from cars \
                where type = 'sedan'";
    let out = sql::execute(&db, stmt).expect("valid statement");
    println!("\n{stmt}\n-> {} rows (projected onto price, age)", out.rows.len());
    print!("{}", sql::explain_plan(&out.stats).expect("EXPLAIN records a plan"));

    // A cyclic priority graph is a typed error, not a panic.
    let bad = sql::execute(
        &db,
        "select skyline from cars prioritize price over mileage and mileage over price",
    );
    match bad {
        Err(e) => println!("\ncyclic PRIORITIZE -> {e}"),
        Ok(_) => unreachable!("cycles are rejected"),
    }
}
