//! The paper's Example 2: multi-dimensional skyline comparison on a digital
//! camera database. A market analyst computes the skyline of Canon
//! professional cameras, then *rolls up* on the brand dimension to compare
//! against all professional cameras — reusing the first query's cached
//! lists instead of searching from scratch (§V-C).
//!
//! Run with: `cargo run --release --example camera_skyline`

use pcube::core::skyline_roll_up;
use pcube::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BRANDS: &[&str] = &["canon", "nikon", "sony", "fuji", "panasonic"];
const TYPES: &[&str] = &["professional", "enthusiast", "compact"];

fn main() {
    // Schema (brand, type, price, resolution, optical zoom); preference
    // dims normalized so that SMALLER IS BETTER (resolution and zoom are
    // stored negated/inverted).
    let mut rng = StdRng::seed_from_u64(77);
    let mut cams =
        Relation::new(Schema::new(&["brand", "type"], &["price", "neg_resolution", "neg_zoom"]));
    for _ in 0..20_000 {
        let brand = BRANDS[rng.gen_range(0..BRANDS.len())];
        let ty = TYPES[rng.gen_range(0..TYPES.len())];
        let quality: f64 = match ty {
            "professional" => 0.7 + rng.gen::<f64>() * 0.3,
            "enthusiast" => 0.4 + rng.gen::<f64>() * 0.4,
            _ => rng.gen::<f64>() * 0.5,
        };
        let price = (quality * 0.8 + rng.gen::<f64>() * 0.2).clamp(0.0, 0.999);
        let resolution = (quality * 0.6 + rng.gen::<f64>() * 0.4).clamp(0.0, 0.999);
        let zoom = rng.gen::<f64>();
        cams.push(&[brand, ty], &[price, 1.0 - resolution, 1.0 - zoom]);
    }
    let db = PCubeDb::build(cams, &PCubeConfig::default());

    // Skyline of Canon professional cameras.
    let sel = db.selection(&[("brand", "canon"), ("type", "professional")]);
    let canon = skyline_query(&db, &sel, &[0, 1, 2], false);
    println!(
        "canon professional skyline: {} cameras ({} R-tree blocks read)",
        canon.skyline.len(),
        canon.stats.io.reads(IoCategory::RtreeBlock)
    );

    // Roll up on brand: professional cameras of ALL makers, continuing from
    // the cached candidate lists (result ∪ b_list).
    let brand_dim = db.relation().schema().bool_index("brand").unwrap();
    let canon_set: Vec<u64> = canon.skyline.iter().map(|p| p.0).collect();
    let all = skyline_roll_up(&db, canon.state, brand_dim);
    println!(
        "all-brands professional skyline: {} cameras ({} more R-tree blocks)",
        all.skyline.len(),
        all.stats.io.reads(IoCategory::RtreeBlock)
    );

    // The analyst's comparison: which Canon skyline models survive against
    // the whole professional market?
    let surviving: Vec<u64> =
        all.skyline.iter().map(|p| p.0).filter(|t| canon_set.contains(t)).collect();
    println!(
        "\nmarket position: {}/{} canon skyline models remain on the global \
         professional skyline",
        surviving.len(),
        canon_set.len()
    );

    // Sanity: the roll-up answer equals a fresh query.
    let fresh = skyline_query(&db, &db.selection(&[("type", "professional")]), &[0, 1, 2], false);
    let mut a: Vec<u64> = all.skyline.iter().map(|p| p.0).collect();
    let mut b: Vec<u64> = fresh.skyline.iter().map(|p| p.0).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "roll-up must equal the fresh query (Lemma 2)");
    println!(
        "\nroll-up reused cached lists: {} blocks vs {} for a fresh query",
        all.stats.io.reads(IoCategory::RtreeBlock),
        fresh.stats.io.reads(IoCategory::RtreeBlock)
    );
}
