//! Reproduces the paper's worked example end to end: the sample database of
//! Table I, the R-tree of Fig 1 (m = 1, M = 2), the (A = a1) signature of
//! Fig 2, the union/intersection assembly of Fig 3, and the incremental
//! insertion of t4 from Fig 4.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use pcube::core::Signature;
use pcube::rtree::{Path, Sid};

/// Table I's `path` column (computed by the paper for its Fig 1 R-tree).
fn table1() -> Vec<(u64, &'static str, &'static str, Path)> {
    vec![
        (1, "a1", "b1", Path(vec![1, 1, 1])),
        (2, "a2", "b2", Path(vec![1, 1, 2])),
        (3, "a1", "b1", Path(vec![1, 2, 1])),
        (4, "a3", "b3", Path(vec![1, 2, 2])),
        (5, "a4", "b1", Path(vec![2, 1, 1])),
        (6, "a2", "b3", Path(vec![2, 1, 2])),
        (7, "a4", "b2", Path(vec![2, 2, 1])),
        (8, "a3", "b3", Path(vec![2, 2, 2])),
    ]
}

fn signature_for(pred: impl Fn(&str, &str) -> bool) -> Signature {
    let paths: Vec<Path> =
        table1().into_iter().filter(|(_, a, b, _)| pred(a, b)).map(|(_, _, _, p)| p).collect();
    Signature::from_paths(2, paths.iter())
}

fn show(label: &str, sig: &Signature) {
    println!("{label}:");
    let mut nodes: Vec<(Sid, String)> = sig
        .iter_nodes()
        .map(|(sid, bits)| {
            let s: String = (0..bits.len()).map(|i| if bits.get(i) { '1' } else { '0' }).collect();
            (sid, s)
        })
        .collect();
    nodes.sort_by_key(|(sid, _)| *sid);
    for (sid, bits) in nodes {
        let path = Path::from_sid(sid, 2);
        println!("  node {path} (SID {}): {bits}", sid.0);
    }
}

fn main() {
    println!("== Table I: 8 tuples, paths from the Fig 1 R-tree (m=1, M=2) ==\n");
    for (tid, a, b, p) in table1() {
        println!("  t{tid}: A={a} B={b} path={p}  SID of leaf node {}", p.parent().unwrap().sid(2).0);
    }

    // Fig 2.a — the (A = a1) signature.
    let a1 = signature_for(|a, _| a == "a1");
    println!("\n== Fig 2.a: (A = a1) signature ==");
    show("(A=a1)", &a1);
    assert!(a1.contains(&Path(vec![1, 1, 1])), "t1 present");
    assert!(a1.contains(&Path(vec![1, 2, 1])), "t3 present");
    assert!(!a1.contains(&Path(vec![2])), "nothing under N2");

    // §IV-B.1 — the paper's SID example: N3's path <1,1> has SID 4.
    assert_eq!(Path(vec![1, 1]).sid(2), Sid(4));
    println!("\nSID check: path <1,1> -> SID 4 (paper's example)");

    // Fig 3 — assembling (A=a2 OR B=b2) and (A=a2 AND B=b2).
    let a2 = signature_for(|a, _| a == "a2");
    let b2 = signature_for(|_, b| b == "b2");
    println!("\n== Fig 3: signature assembly ==");
    show("(A=a2)", &a2);
    show("(B=b2)", &b2);
    let union = a2.union(&b2);
    show("(A=a2 OR B=b2) — union", &union);
    let inter = a2.intersect(&b2, 3);
    show("(A=a2 AND B=b2) — intersection with recursive fix-up", &inter);
    // Only t2 satisfies both; the whole N2 subtree must vanish.
    assert!(inter.contains(&Path(vec![1, 1, 2])));
    assert!(!inter.contains(&Path(vec![2])));

    // Fig 4 — inserting t4: before the insert, (A = a3) covers only t8.
    println!("\n== Fig 4: inserting t4 updates (A = a3) incrementally ==");
    let mut a3 = signature_for(|a, _| a == "a3");
    // Simulate the pre-insert state by clearing t4's path.
    a3.clear_path(&Path(vec![1, 2, 2]));
    show("(A=a3) before inserting t4", &a3);
    assert!(!a3.contains(&Path(vec![1])));
    // t4 lands in leaf N4, new path <1,2,2>; flip the entries on its path.
    a3.set_path(&Path(vec![1, 2, 2]));
    show("(A=a3) after inserting t4", &a3);
    assert!(a3.contains(&Path(vec![1, 2, 2])));
    assert_eq!(a3, signature_for(|a, _| a == "a3"));

    println!("\nAll worked-example assertions hold.");
}
