//! **pcube** — a reproduction of *P-Cube: Answering Preference Queries in
//! Multi-Dimensional Space* (Dong Xin, Jiawei Han; ICDE 2008).
//!
//! P-Cube answers **preference queries** (top-k and skyline) carrying
//! **multi-dimensional boolean selections** by materializing a *signature*
//! per data-cube cell over a shared R-tree partition of the preference
//! dimensions, then pushing boolean and preference pruning into one
//! branch-and-bound search.
//!
//! # Quickstart
//!
//! ```
//! use pcube::prelude::*;
//!
//! // A used-car table: boolean dims (type, color), preference dims
//! // (price, mileage) — the paper's Example 1.
//! let mut cars = Relation::new(Schema::new(&["type", "color"], &["price", "mileage"]));
//! cars.push(&["sedan", "red"], &[0.30, 0.20]);
//! cars.push(&["sedan", "blue"], &[0.10, 0.90]);
//! cars.push(&["suv", "red"], &[0.20, 0.40]);
//! cars.push(&["sedan", "red"], &[0.25, 0.35]);
//! cars.push(&["sedan", "red"], &[0.90, 0.80]);
//!
//! let db = PCubeDb::build(cars, &PCubeConfig::default());
//!
//! // Skyline of red sedans over (price, mileage).
//! let sel = db.selection(&[("type", "sedan"), ("color", "red")]);
//! let out = skyline_query(&db, &sel, &[0, 1], false);
//! let mut tids: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
//! tids.sort();
//! assert_eq!(tids, vec![0, 3]);
//!
//! // Top-1 red sedan closest to (price 0.25, mileage 0.30).
//! let f = WeightedDistanceFn::new(vec![0.25, 0.30], vec![1.0, 1.0]);
//! let top = topk_query(&db, &sel, 1, &f, false);
//! assert_eq!(top.topk[0].0, 3);
//! ```
//!
//! # Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`core`] | `pcube-core` | signatures, P-Cube, Algorithm 1 |
//! | [`cube`] | `pcube-cube` | relation, dictionaries, cuboids, cells |
//! | [`rtree`] | `pcube-rtree` | the shared R*-tree partition |
//! | [`bptree`] | `pcube-bptree` | disk B+-tree (indexes + directories) |
//! | [`bitmap`] | `pcube-bitmap` | bit arrays, compression, Bloom filters |
//! | [`storage`] | `pcube-storage` | counted pager, buffer pool, cost model |
//! | [`baselines`] | `pcube-baselines` | Boolean / Domination / Index-merge |
//! | [`data`] | `pcube-data` | synthetic + CoverType-surrogate generators |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sql;

pub use pcube_baselines as baselines;
pub use pcube_bitmap as bitmap;
pub use pcube_bptree as bptree;
pub use pcube_core as core;
pub use pcube_cube as cube;
pub use pcube_data as data;
pub use pcube_rtree as rtree;
pub use pcube_storage as storage;

/// One-stop imports for applications.
pub mod prelude {
    pub use pcube_baselines::{
        BooleanFirstExecutor, BooleanIndexSet, DominationFirstExecutor, IndexMergeExecutor,
    };
    pub use pcube_core::{
        convex_hull_query, dynamic_skyline_query, par_convex_hull_query,
        par_dynamic_skyline_query, par_skyline_query, par_topk_query, skyline_drill_down,
        skyline_query, skyline_roll_up, topk_drill_down, topk_query, topk_roll_up, CommitReceipt,
        CostEstimate, DurabilityError, DurabilityOptions, DurableDb, DurableState, EngineKind,
        ClassOutcome, EpochReader, EpochSnapshot, Executor, LinearFn, MaintenanceOp, MinCoordSum,
        PCube, PCubeConfig, PCubeDb, PCubeExecutor, PSkylineClass, ParallelOptions, PlanDecision,
        Planner, PriorityGraph, PriorityGraphError, QueryClass, QuerySpec, QueryStats,
        RankingFunction, RecoveryReport, RepairOutcome, Signature, SkylineClass, SkylineOutcome,
        SubspaceSkylineClass, TopKClass, TopKOutcome, WeightedDistanceFn,
    };
    pub use pcube_core::{scrub, QueryBudget, ScrubFinding, ScrubReport, StopReason};
    pub use pcube_core::{CommitError, CommitQueue, CommitQueuePolicy, GroupCommitStats};
    pub use pcube_cube::{
        CellKey, CuboidMask, MaterializationPlan, Predicate, Relation, Schema, Selection,
    };
    pub use pcube_storage::{
        CostModel, CrashPlan, CrashPoint, FaultPlan, IoCategory, WalDamage, WalSyncError,
    };
}
