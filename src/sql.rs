//! A small SQL-style front end for the paper's query notation (§III):
//!
//! ```sql
//! SELECT SKYLINE FROM r WHERE type = 'sedan' AND color = 'red'
//!     PREFERENCE BY price, mileage
//!
//! SELECT TOP 10 FROM r WHERE type = 'sedan'
//!     ORDER BY (price - 0.3)^2 + 0.5 * (mileage - 0.15)^2
//!
//! EXPLAIN SELECT TOP 10 FROM r WHERE type = 'sedan' ORDER BY price
//! ```
//!
//! An `EXPLAIN` prefix routes the statement through the §VI cost-based
//! planner: the cheapest engine (P-Cube or a baseline) answers the query,
//! and the decision is recorded in the outcome's `stats.plan` (render it
//! with [`explain_plan`]).
//!
//! Ranking expressions are sums of terms, each either linear
//! (`[w *] dim`) or squared-distance (`[w *] (dim - target)^2` with
//! `w ≥ 0`), which covers the paper's Example 1 function family and the
//! evaluation's linear functions while guaranteeing a derivable lower bound
//! (§III's requirement).

use pcube_baselines::{
    BooleanFirstExecutor, BooleanIndexSet, DominationFirstExecutor, IndexMergeExecutor,
};
use pcube_core::{
    skyline_query_governed, topk_query_governed, CancelToken, DurableDb, Executor, PCubeDb,
    PCubeExecutor, PSkylineClass, Planner, PriorityGraph, QueryBudget, QueryClass, QueryOutcome,
    QueryStats, RankingFunction, SkylineRows, SubspaceSkylineClass, TopKRows,
};
use pcube_cube::{Predicate, Selection};
use pcube_rtree::Mbr;
use std::fmt;
use std::time::Duration;

/// A parse or binding failure, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError(pub String);

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SqlError> {
    Err(SqlError(msg.into()))
}

/// One term of a ranking expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RankTerm {
    /// `weight * dim`
    Linear {
        /// Preference-dimension name.
        dim: String,
        /// Coefficient (any sign).
        weight: f64,
    },
    /// `weight * (dim - target)^2`, `weight ≥ 0`
    SquaredDistance {
        /// Preference-dimension name.
        dim: String,
        /// Non-negative coefficient.
        weight: f64,
        /// The preferred value.
        target: f64,
    },
}

/// A parsed query, not yet bound to a database.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlQuery {
    /// `SELECT SKYLINE FROM … [WHERE …] [PREFERENCE BY …]`
    Skyline {
        /// `(dimension, value)` equality predicates.
        predicates: Vec<(String, String)>,
        /// Preference dimensions (empty = all).
        pref_dims: Vec<String>,
    },
    /// `SELECT TOP k FROM … [WHERE …] ORDER BY expr`
    TopK {
        /// Result size.
        k: usize,
        /// `(dimension, value)` equality predicates.
        predicates: Vec<(String, String)>,
        /// The ranking expression.
        ranking: Vec<RankTerm>,
    },
    /// `SELECT SKYLINE [OF …] FROM … [WHERE …] PRIORITIZE a OVER b
    /// [AND c OVER d]*` — prioritized (p-)skyline under a dimension
    /// priority DAG.
    PSkyline {
        /// `(dimension, value)` equality predicates.
        predicates: Vec<(String, String)>,
        /// Preference dimensions (empty = all).
        pref_dims: Vec<String>,
        /// `(dominant, dominated)` priority edges.
        edges: Vec<(String, String)>,
    },
    /// `SELECT SKYLINE IN SUBSPACE (…) FROM … [WHERE …]` — skyline of the
    /// projection onto the listed dimensions, with distinct-value
    /// semantics on the projected duplicates.
    SubspaceSkyline {
        /// `(dimension, value)` equality predicates.
        predicates: Vec<(String, String)>,
        /// The subspace dimensions, in projection order.
        dims: Vec<String>,
    },
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(f64),
    Symbol(char),
}

fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j >= chars.len() {
                    return err("unterminated string literal");
                }
                out.push(Token::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let value = text.parse::<f64>().map_err(|_| SqlError(format!("bad number {text:?}")))?;
                out.push(Token::Number(value));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Token::Ident(chars[start..j].iter().collect()));
                i = j;
            }
            '=' | '(' | ')' | '+' | '-' | '*' | '^' | ',' => {
                out.push(Token::Symbol(c));
                i += 1;
            }
            other => return err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Symbol(s)) if s == c => Ok(()),
            other => err(format!("expected {c:?}, found {other:?}")),
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(w)) => Ok(w),
            other => err(format!("expected identifier, found {other:?}")),
        }
    }

    fn number(&mut self) -> Result<f64, SqlError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => err(format!("expected number, found {other:?}")),
        }
    }

    /// `ident (, ident)*`
    fn ident_list(&mut self) -> Result<Vec<String>, SqlError> {
        let mut dims = vec![self.ident()?];
        while matches!(self.peek(), Some(Token::Symbol(','))) {
            self.pos += 1;
            dims.push(self.ident()?);
        }
        Ok(dims)
    }

    fn predicates(&mut self) -> Result<Vec<(String, String)>, SqlError> {
        if !self.keyword("where") {
            return Ok(Vec::new());
        }
        let mut preds = Vec::new();
        loop {
            let dim = self.ident()?;
            self.expect_symbol('=')?;
            let value = match self.next() {
                Some(Token::Str(s)) => s,
                Some(Token::Ident(w)) => w,
                Some(Token::Number(n)) => format!("{n}"),
                other => return err(format!("expected value, found {other:?}")),
            };
            preds.push((dim, value));
            if !self.keyword("and") {
                break;
            }
        }
        Ok(preds)
    }

    /// `expr := term (+ term)*` where
    /// `term := [number *] base` and
    /// `base := ident | ( ident - number ) ^ 2`.
    fn ranking(&mut self) -> Result<Vec<RankTerm>, SqlError> {
        let mut terms = vec![self.term()?];
        while matches!(self.peek(), Some(Token::Symbol('+'))) {
            self.pos += 1;
            terms.push(self.term()?);
        }
        Ok(terms)
    }

    fn term(&mut self) -> Result<RankTerm, SqlError> {
        let weight = if let Some(Token::Number(_)) = self.peek() {
            let w = self.number()?;
            self.expect_symbol('*')?;
            w
        } else {
            1.0
        };
        match self.peek() {
            Some(Token::Symbol('(')) => {
                self.pos += 1;
                let dim = self.ident()?;
                self.expect_symbol('-')?;
                let target = self.number()?;
                self.expect_symbol(')')?;
                self.expect_symbol('^')?;
                match self.next() {
                    Some(Token::Number(n)) if (n - 2.0).abs() < f64::EPSILON => {}
                    other => return err(format!("only ^2 is supported, found {other:?}")),
                }
                if weight < 0.0 {
                    return err("squared-distance terms need a non-negative weight");
                }
                Ok(RankTerm::SquaredDistance { dim, weight, target })
            }
            Some(Token::Ident(_)) => {
                let dim = self.ident()?;
                Ok(RankTerm::Linear { dim, weight })
            }
            other => err(format!("expected a ranking term, found {other:?}")),
        }
    }
}

/// A parsed statement: the query plus whether it was prefixed with
/// `EXPLAIN` (run through the §VI cost-based planner, with the decision
/// reported in the outcome's stats).
#[derive(Debug, Clone, PartialEq)]
pub struct SqlStatement {
    /// `true` when the statement began with `EXPLAIN`.
    pub explain: bool,
    /// The query itself.
    pub query: SqlQuery,
}

/// A session directive or a query statement — what one REPL line parses
/// to under [`parse_command`].
#[derive(Debug, Clone, PartialEq)]
pub enum SqlCommand {
    /// A `SELECT …` (optionally `EXPLAIN`-prefixed) statement.
    Statement(SqlStatement),
    /// `SET DEADLINE_MS <n>` — apply an `n`-millisecond wall-clock
    /// deadline to every following statement (`0` clears it).
    SetDeadlineMs(u64),
    /// `SET MAX_BLOCKS <n>` — cap the block reads each following
    /// statement may charge (`0` clears it).
    SetMaxBlocks(u64),
    /// `CANCEL` — trip the session's [`CancelToken`]. Meant to be issued
    /// from another thread holding a clone of the token; at the prompt it
    /// demonstrates the path (every query returns `Partial(Cancelled)`
    /// until `RESET`).
    Cancel,
    /// `RESET` — re-arm a cancelled session.
    Reset,
    /// `CHECKPOINT` — flush dirty pages into the durable checkpoint image
    /// and truncate the WAL prefix it covers. Requires a durable session
    /// ([`SqlSession::run_durable`]); against a read-only database it is
    /// an error.
    Checkpoint,
    /// `SCRUB` — run an online integrity pass over the signature store
    /// under the session's deadline/block budget: verify every page's
    /// CRC32 and every cell's structural invariants, quarantining each
    /// deterministic failure so later probes skip it in O(1).
    Scrub,
    /// `REPAIR` — rebuild every quarantined signature page from the base
    /// table, through the WAL (crash-safe), publishing the healed store as
    /// a new epoch. Requires a durable session.
    Repair,
    /// `STATS` — the session database's I/O ledger: reads/writes plus the
    /// self-healing counters (`degraded_reads`, `pages_quarantined`,
    /// `quarantine_hits`, `pages_repaired`).
    Stats,
}

/// Parses one REPL line: a session directive (`SET …`, `CANCEL`, `RESET`)
/// or a query statement.
pub fn parse_command(sql: &str) -> Result<SqlCommand, SqlError> {
    let mut p = Parser { tokens: lex(sql)?, pos: 0 };
    if p.keyword("set") {
        let knob = p.ident()?;
        let n = p.number()?;
        if n < 0.0 || n.fract() != 0.0 {
            return err(format!("SET {} takes a non-negative integer", knob.to_uppercase()));
        }
        if p.peek().is_some() {
            return err(format!("trailing input at {:?}", p.peek()));
        }
        return if knob.eq_ignore_ascii_case("deadline_ms") {
            Ok(SqlCommand::SetDeadlineMs(n as u64))
        } else if knob.eq_ignore_ascii_case("max_blocks") {
            Ok(SqlCommand::SetMaxBlocks(n as u64))
        } else {
            err(format!("unknown session knob {knob:?} (try DEADLINE_MS or MAX_BLOCKS)"))
        };
    }
    if p.keyword("cancel") {
        if p.peek().is_some() {
            return err(format!("trailing input at {:?}", p.peek()));
        }
        return Ok(SqlCommand::Cancel);
    }
    if p.keyword("reset") {
        if p.peek().is_some() {
            return err(format!("trailing input at {:?}", p.peek()));
        }
        return Ok(SqlCommand::Reset);
    }
    if p.keyword("checkpoint") {
        if p.peek().is_some() {
            return err(format!("trailing input at {:?}", p.peek()));
        }
        return Ok(SqlCommand::Checkpoint);
    }
    if p.keyword("scrub") {
        if p.peek().is_some() {
            return err(format!("trailing input at {:?}", p.peek()));
        }
        return Ok(SqlCommand::Scrub);
    }
    if p.keyword("repair") {
        if p.peek().is_some() {
            return err(format!("trailing input at {:?}", p.peek()));
        }
        return Ok(SqlCommand::Repair);
    }
    if p.keyword("stats") {
        if p.peek().is_some() {
            return err(format!("trailing input at {:?}", p.peek()));
        }
        return Ok(SqlCommand::Stats);
    }
    let explain = p.keyword("explain");
    let query = parse_query(&mut p)?;
    Ok(SqlCommand::Statement(SqlStatement { explain, query }))
}

/// Parses one statement of the paper's query notation.
pub fn parse(sql: &str) -> Result<SqlQuery, SqlError> {
    Ok(parse_statement(sql)?.query)
}

/// Parses one statement, honoring an optional leading `EXPLAIN`.
pub fn parse_statement(sql: &str) -> Result<SqlStatement, SqlError> {
    let mut p = Parser { tokens: lex(sql)?, pos: 0 };
    let explain = p.keyword("explain");
    let query = parse_query(&mut p)?;
    Ok(SqlStatement { explain, query })
}

fn parse_query(p: &mut Parser) -> Result<SqlQuery, SqlError> {
    p.expect_keyword("select")?;
    let query = if p.keyword("skyline") || p.keyword("skylines") {
        // `OF d1, d2` before FROM — same meaning as `PREFERENCE BY` after
        // the WHERE clause; at most one of the two may appear.
        let mut pref_dims = if p.keyword("of") { p.ident_list()? } else { Vec::new() };
        // `IN SUBSPACE (d1, d2)`: the projected-skyline form.
        let subspace = if p.keyword("in") {
            p.expect_keyword("subspace")?;
            p.expect_symbol('(')?;
            let dims = p.ident_list()?;
            p.expect_symbol(')')?;
            Some(dims)
        } else {
            None
        };
        p.expect_keyword("from")?;
        let _table = p.ident()?;
        let predicates = p.predicates()?;
        if p.keyword("preference") {
            p.expect_keyword("by")?;
            if !pref_dims.is_empty() {
                return err("give the skyline dimensions once: OF … or PREFERENCE BY …, not both");
            }
            pref_dims = p.ident_list()?;
        }
        // `PRIORITIZE a OVER b [AND c OVER d]*`: priority edges.
        let mut edges = Vec::new();
        if p.keyword("prioritize") {
            loop {
                let dominant = p.ident()?;
                p.expect_keyword("over")?;
                let dominated = p.ident()?;
                edges.push((dominant, dominated));
                if !p.keyword("and") {
                    break;
                }
            }
        }
        match subspace {
            Some(dims) => {
                if !pref_dims.is_empty() {
                    return err("IN SUBSPACE already fixes the dimensions; drop OF / PREFERENCE BY");
                }
                if !edges.is_empty() {
                    return err("PRIORITIZE cannot be combined with IN SUBSPACE");
                }
                SqlQuery::SubspaceSkyline { predicates, dims }
            }
            None if !edges.is_empty() => SqlQuery::PSkyline { predicates, pref_dims, edges },
            None => SqlQuery::Skyline { predicates, pref_dims },
        }
    } else if p.keyword("top") {
        let k = p.number()? as usize;
        if k == 0 {
            return err("TOP k must be positive");
        }
        p.expect_keyword("from")?;
        let _table = p.ident()?;
        let predicates = p.predicates()?;
        p.expect_keyword("order")?;
        p.expect_keyword("by")?;
        let ranking = p.ranking()?;
        SqlQuery::TopK { k, predicates, ranking }
    } else {
        return err(format!("expected SKYLINE or TOP, found {:?}", p.peek()));
    };
    if p.peek().is_some() {
        return err(format!("trailing input at {:?}", p.peek()));
    }
    Ok(query)
}

// ------------------------------------------------------------- executor --

/// A compiled ranking expression (implements [`RankingFunction`]).
#[derive(Debug, Clone)]
pub struct CompiledRanking {
    terms: Vec<(usize, RankTerm)>,
}

impl RankingFunction for CompiledRanking {
    fn score(&self, point: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(d, t)| match t {
                RankTerm::Linear { weight, .. } => weight * point[*d],
                RankTerm::SquaredDistance { weight, target, .. } => {
                    weight * (point[*d] - target) * (point[*d] - target)
                }
            })
            .sum()
    }

    fn lower_bound(&self, mbr: &Mbr) -> f64 {
        self.terms
            .iter()
            .map(|(d, t)| match t {
                RankTerm::Linear { weight, .. } => {
                    if *weight >= 0.0 {
                        weight * mbr.min[*d]
                    } else {
                        weight * mbr.max[*d]
                    }
                }
                RankTerm::SquaredDistance { weight, target, .. } => {
                    let c = target.clamp(mbr.min[*d], mbr.max[*d]);
                    weight * (c - target) * (c - target)
                }
            })
            .sum()
    }
}

/// One result row with decoded boolean values.
#[derive(Debug, Clone)]
pub struct ResultRow {
    /// Tuple id.
    pub tid: u64,
    /// Boolean-dimension values, decoded via the dictionaries (raw codes
    /// are rendered as `#<code>` when no string was interned).
    pub bool_values: Vec<String>,
    /// Preference coordinates.
    pub coords: Vec<f64>,
    /// Ranking score (`None` for skylines).
    pub score: Option<f64>,
}

/// A completed SQL query.
pub struct SqlOutcome {
    /// The rows.
    pub rows: Vec<ResultRow>,
    /// Execution metrics.
    pub stats: QueryStats,
}

fn bind_selection(db: &PCubeDb, predicates: &[(String, String)]) -> Result<Selection, SqlError> {
    predicates
        .iter()
        .map(|(dim_name, value)| {
            let dim = db
                .relation()
                .schema()
                .bool_index(dim_name)
                .ok_or_else(|| SqlError(format!("unknown boolean dimension {dim_name:?}")))?;
            let dict = db.relation().dictionary(dim);
            let value = match dict.code(value) {
                Some(code) => code,
                // Dictionary-less relations (rows appended with raw codes,
                // e.g. the synthetic generators) accept numeric literals as
                // the codes themselves. Otherwise an unknown value is legal:
                // the query just matches nothing.
                None if dict.is_empty() => value.parse::<u32>().unwrap_or(u32::MAX),
                None => u32::MAX,
            };
            Ok(Predicate { dim, value })
        })
        .collect()
}

fn bind_pref_dim(db: &PCubeDb, name: &str) -> Result<usize, SqlError> {
    db.relation()
        .schema()
        .pref_index(name)
        .ok_or_else(|| SqlError(format!("unknown preference dimension {name:?}")))
}

fn decode_row(db: &PCubeDb, tid: u64, coords: &[f64], score: Option<f64>) -> ResultRow {
    let n_bool = db.relation().schema().n_bool();
    let bool_values = (0..n_bool)
        .map(|d| {
            let code = db.relation().bool_code(tid, d);
            db.relation()
                .dictionary(d)
                .value(code)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("#{code}"))
        })
        .collect();
    ResultRow { tid, bool_values, coords: coords.to_vec(), score }
}

/// Parses and runs one statement against a P-Cube database.
///
/// A statement prefixed with `EXPLAIN` is dispatched through the §VI
/// cost-based planner over every engine (P-Cube and the three baselines):
/// the rows come back from whichever engine the planner picked, and the
/// decision — chosen engine, selectivity, per-engine block estimates — is
/// recorded in `stats.plan` (render it with [`explain_plan`]).
pub fn execute(db: &PCubeDb, sql: &str) -> Result<SqlOutcome, SqlError> {
    execute_with(db, sql, &QueryBudget::unlimited(), None)
}

/// [`execute`] under a [`QueryBudget`] and optional [`CancelToken`]. When
/// the budget trips, the rows are a best-effort partial answer and
/// `stats.outcome` carries the [`QueryOutcome::Partial`] reason and
/// progress counters (render them with [`render_outcome`]). `EXPLAIN`
/// statements additionally plan with the budget: the planner substitutes
/// the cheapest engine whose §VI estimate fits, and the swap is reported
/// by [`explain_plan`].
pub fn execute_with(
    db: &PCubeDb,
    sql: &str,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Result<SqlOutcome, SqlError> {
    let stmt = parse_statement(sql)?;
    execute_statement(db, stmt, budget, cancel)
}

fn execute_statement(
    db: &PCubeDb,
    stmt: SqlStatement,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Result<SqlOutcome, SqlError> {
    match stmt.query {
        SqlQuery::Skyline { predicates, pref_dims } => {
            let selection = bind_selection(db, &predicates)?;
            let dims: Vec<usize> = if pref_dims.is_empty() {
                (0..db.relation().schema().n_pref()).collect()
            } else {
                pref_dims
                    .iter()
                    .map(|n| bind_pref_dim(db, n))
                    .collect::<Result<Vec<_>, _>>()?
            };
            let (skyline, stats) = if stmt.explain {
                planned_skyline(db, &selection, &dims, budget, cancel)?
            } else {
                let out = skyline_query_governed(db, &selection, &dims, false, budget, cancel);
                (out.skyline, out.stats)
            };
            Ok(SqlOutcome {
                rows: skyline
                    .iter()
                    .map(|(tid, coords)| decode_row(db, *tid, coords, None))
                    .collect(),
                stats,
            })
        }
        SqlQuery::TopK { k, predicates, ranking } => {
            let selection = bind_selection(db, &predicates)?;
            let terms = ranking
                .into_iter()
                .map(|t| {
                    let name = match &t {
                        RankTerm::Linear { dim, .. } | RankTerm::SquaredDistance { dim, .. } => dim,
                    };
                    Ok((bind_pref_dim(db, name)?, t))
                })
                .collect::<Result<Vec<_>, SqlError>>()?;
            let f = CompiledRanking { terms };
            let (topk, stats) = if stmt.explain {
                planned_topk(db, &selection, k, &f, budget, cancel)?
            } else {
                let out = topk_query_governed(db, &selection, k, &f, false, budget, cancel);
                (out.topk, out.stats)
            };
            Ok(SqlOutcome {
                rows: topk
                    .iter()
                    .map(|(tid, coords, score)| decode_row(db, *tid, coords, Some(*score)))
                    .collect(),
                stats,
            })
        }
        SqlQuery::PSkyline { predicates, pref_dims, edges } => {
            let selection = bind_selection(db, &predicates)?;
            let names: Vec<String> = if pref_dims.is_empty() {
                (0..db.relation().schema().n_pref())
                    .map(|d| db.relation().schema().pref_name(d).to_owned())
                    .collect()
            } else {
                pref_dims
            };
            reject_duplicate_dims(&names, "the skyline dimension list")?;
            let dims = names
                .iter()
                .map(|n| bind_pref_dim(db, n))
                .collect::<Result<Vec<_>, _>>()?;
            let edge_ids = edges
                .iter()
                .map(|(a, b)| {
                    let a_id = bind_pref_dim(db, a)?;
                    let b_id = bind_pref_dim(db, b)?;
                    for (name, id) in [(a, a_id), (b, b_id)] {
                        if !dims.contains(&id) {
                            return err(format!(
                                "PRIORITIZE mentions {name:?}, which is not one of \
                                 this query's skyline dimensions"
                            ));
                        }
                    }
                    Ok((a_id, b_id))
                })
                .collect::<Result<Vec<_>, SqlError>>()?;
            let graph = PriorityGraph::new(dims, &edge_ids)
                .map_err(|e| SqlError(format!("invalid PRIORITIZE clause: {e}")))?;
            let class = PSkylineClass::new(graph);
            let (rows, stats) = run_class_statement(db, &class, &selection, stmt.explain, budget, cancel)?;
            Ok(SqlOutcome {
                rows: rows
                    .iter()
                    .map(|(tid, coords)| decode_row(db, *tid, coords, None))
                    .collect(),
                stats,
            })
        }
        SqlQuery::SubspaceSkyline { predicates, dims } => {
            let selection = bind_selection(db, &predicates)?;
            reject_duplicate_dims(&dims, "SUBSPACE")?;
            let dim_ids = dims
                .iter()
                .map(|n| bind_pref_dim(db, n))
                .collect::<Result<Vec<_>, _>>()?;
            let class = SubspaceSkylineClass::new(dim_ids);
            let (rows, stats) = run_class_statement(db, &class, &selection, stmt.explain, budget, cancel)?;
            // Subspace rows carry only the projected coordinates, in the
            // order the SUBSPACE clause listed them.
            Ok(SqlOutcome {
                rows: rows
                    .iter()
                    .map(|(tid, coords)| decode_row(db, *tid, coords, None))
                    .collect(),
                stats,
            })
        }
    }
}

fn reject_duplicate_dims(names: &[String], what: &str) -> Result<(), SqlError> {
    for (i, n) in names.iter().enumerate() {
        if names[..i].iter().any(|m| m == n) {
            return err(format!("duplicate dimension {n:?} in {what}"));
        }
    }
    Ok(())
}

/// Runs a pluggable query class the way the legacy statements run: direct
/// serial engine normally, or through the §VI planner when the statement
/// was `EXPLAIN`-prefixed (the decision lands in `stats.plan` either way
/// only for the planned path).
fn run_class_statement<C: QueryClass + Sync>(
    db: &PCubeDb,
    class: &C,
    selection: &Selection,
    explain: bool,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Result<(Vec<C::Row>, QueryStats), SqlError> {
    if explain {
        let planner = Planner::new(db);
        db.plan_and_run_class(&planner, class, selection, budget, cancel)
            .map_err(|e| SqlError(e.to_string()))
    } else {
        let out = db.run_governed(selection, class, budget, cancel);
        Ok((out.rows, out.stats))
    }
}

/// Per-connection execution state: a deadline and block cap applied to
/// every statement, plus a [`CancelToken`] that a concurrent thread (or a
/// `CANCEL` directive) can trip to stop the in-flight query. Drive it
/// with [`SqlSession::run`], which also interprets the session
/// directives of [`SqlCommand`].
#[derive(Debug, Clone, Default)]
pub struct SqlSession {
    deadline_ms: Option<u64>,
    max_blocks: Option<u64>,
    cancel: CancelToken,
}

/// What one [`SqlSession::run`] call produced.
pub enum SessionReply {
    /// A query ran; rows and stats.
    Rows(Box<SqlOutcome>),
    /// A session directive was applied; a one-line acknowledgement.
    Ack(String),
}

impl SqlSession {
    /// A fresh session: no deadline, no block cap, not cancelled.
    pub fn new() -> Self {
        SqlSession::default()
    }

    /// The session's cancel token. Clone it into another thread to cancel
    /// the statement currently running on this session.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The per-statement budget implied by the session knobs.
    pub fn budget(&self) -> QueryBudget {
        let mut b = QueryBudget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        if let Some(blocks) = self.max_blocks {
            b = b.with_block_budget(blocks);
        }
        b
    }

    /// Parses and runs one line — a directive or a statement — against
    /// `db` under the session's budget and cancel token.
    pub fn run(&mut self, db: &PCubeDb, line: &str) -> Result<SessionReply, SqlError> {
        match parse_command(line)? {
            SqlCommand::SetDeadlineMs(ms) => {
                self.deadline_ms = (ms > 0).then_some(ms);
                Ok(SessionReply::Ack(match self.deadline_ms {
                    Some(ms) => format!("deadline set to {ms} ms per statement"),
                    None => "deadline cleared".to_owned(),
                }))
            }
            SqlCommand::SetMaxBlocks(blocks) => {
                self.max_blocks = (blocks > 0).then_some(blocks);
                Ok(SessionReply::Ack(match self.max_blocks {
                    Some(b) => format!("block budget set to {b} reads per statement"),
                    None => "block budget cleared".to_owned(),
                }))
            }
            SqlCommand::Cancel => {
                self.cancel.cancel();
                Ok(SessionReply::Ack(
                    "session cancelled — statements stop immediately until RESET".to_owned(),
                ))
            }
            SqlCommand::Reset => {
                self.cancel.reset();
                Ok(SessionReply::Ack("session re-armed".to_owned()))
            }
            SqlCommand::Checkpoint => err(
                "CHECKPOINT requires a durable session — open the database with \
                 DurableDb and drive it through SqlSession::run_durable",
            ),
            SqlCommand::Scrub => {
                let report = db.scrub(&self.budget());
                Ok(SessionReply::Ack(report.to_string()))
            }
            SqlCommand::Repair => err(
                "REPAIR requires a durable session — the rebuild is logged through \
                 the WAL; open the database with DurableDb and drive it through \
                 SqlSession::run_durable",
            ),
            SqlCommand::Stats => Ok(SessionReply::Ack(render_stats(db))),
            SqlCommand::Statement(stmt) => {
                execute_statement(db, stmt, &self.budget(), Some(&self.cancel))
                    .map(|out| SessionReply::Rows(Box::new(out)))
            }
        }
    }

    /// [`SqlSession::run`] against a durable database: additionally
    /// interprets `CHECKPOINT`, and runs queries against the live master.
    pub fn run_durable(
        &mut self,
        db: &mut DurableDb,
        line: &str,
    ) -> Result<SessionReply, SqlError> {
        match parse_command(line)? {
            SqlCommand::Checkpoint => {
                let outcome = db.checkpoint().map_err(|e| SqlError(e.to_string()))?;
                Ok(SessionReply::Ack(format!(
                    "checkpoint installed: epoch {}, {} txns covered, {} pages flushed, \
                     {} WAL bytes reclaimed",
                    outcome.epoch,
                    outcome.txns,
                    outcome.pages_flushed,
                    outcome.wal_bytes_reclaimed
                )))
            }
            SqlCommand::Repair => {
                let outcome = db.repair().map_err(|e| SqlError(e.to_string()))?;
                Ok(SessionReply::Ack(outcome.to_string()))
            }
            _ => self.run(db.db(), line),
        }
    }
}

/// Renders the database's I/O ledger as a one-line-per-counter summary —
/// the `STATS` directive. The self-healing counters make degraded
/// operation visible at the prompt: `degraded_reads` grows while damaged
/// pages are being verified around, `pages_quarantined`/`quarantine_hits`
/// show the memoization working, and `pages_repaired` confirms a `REPAIR`
/// healed them.
fn render_stats(db: &PCubeDb) -> String {
    let s = db.stats().snapshot();
    format!(
        "reads: {} (degraded: {}), writes: {}, pages_quarantined: {}, \
         quarantine_hits: {}, pages_repaired: {}",
        s.total_reads(),
        s.degraded_reads(),
        s.total_writes(),
        s.pages_quarantined(),
        s.quarantine_hits(),
        s.pages_repaired(),
    )
}

/// Runs a top-k statement through the planner over all four engines.
fn planned_topk(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Result<(TopKRows, QueryStats), SqlError> {
    let planner = Planner::new(db);
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    let boolean = BooleanFirstExecutor::new(&indexes);
    let merge = IndexMergeExecutor::new(&indexes);
    let executors: Vec<&dyn Executor> =
        vec![&PCubeExecutor, &boolean, &DominationFirstExecutor, &merge];
    db.plan_and_run_topk_governed(&planner, &executors, selection, k, f, budget, cancel)
        .map_err(|e| SqlError(e.to_string()))
}

/// Runs a skyline statement through the planner over the engines that
/// support skylines (index-merge is top-k only and excluded by the trait).
fn planned_skyline(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Result<(SkylineRows, QueryStats), SqlError> {
    let planner = Planner::new(db);
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    let boolean = BooleanFirstExecutor::new(&indexes);
    let merge = IndexMergeExecutor::new(&indexes);
    let executors: Vec<&dyn Executor> =
        vec![&PCubeExecutor, &boolean, &DominationFirstExecutor, &merge];
    db.plan_and_run_skyline_governed(&planner, &executors, selection, pref_dims, budget, cancel)
        .map_err(|e| SqlError(e.to_string()))
}

/// Renders a [`QueryOutcome::Partial`] as a one-line notice (`None` for
/// complete queries): the stop reason plus how far the query got.
pub fn render_outcome(stats: &QueryStats) -> Option<String> {
    let QueryOutcome::Partial { reason, progress } = &stats.outcome else {
        return None;
    };
    Some(format!(
        "partial result: {reason} after {} pops, {} rows, {} blocks ({} heap entries unexplored)",
        progress.pops, progress.results_so_far, progress.blocks_used, progress.frontier,
    ))
}

/// Renders the planner decision recorded in `stats` as an `EXPLAIN`-style
/// report, one line per candidate engine; `None` when the statement ran
/// without the planner.
pub fn explain_plan(stats: &QueryStats) -> Option<String> {
    let plan = stats.plan.as_ref()?;
    let mut out = format!(
        "plan: {} via {} (selectivity {:.4}, ~{:.0} qualifying)\n",
        plan.class,
        plan.chosen.name(),
        plan.selectivity,
        plan.qualifying_est,
    );
    for e in &plan.estimates {
        out.push_str(&format!(
            "  {} {:<16} est {:>9.1} blocks ({:>9.1} random + {:>7.1} sequential, ~{:.4}s)\n",
            if e.engine == plan.chosen { "->" } else { "  " },
            e.engine.name(),
            e.random_blocks + e.sequential_blocks,
            e.random_blocks,
            e.sequential_blocks,
            e.seconds,
        ));
    }
    if plan.budget_limited {
        match plan.fallback_from {
            Some(from) => out.push_str(&format!(
                "  budget: {} exceeds the query budget; fell back to {}\n",
                from.name(),
                plan.chosen.name(),
            )),
            None => out.push_str(
                "  budget: no engine's estimate fits the query budget; \
                 running the cost winner under governance\n",
            ),
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example_1() {
        let q = parse(
            "select top 10 from r where type = 'sedan' and color = 'red' \
             order by (price - 0.3)^2 + 0.5 * (mileage - 0.15)^2",
        )
        .unwrap();
        assert_eq!(
            q,
            SqlQuery::TopK {
                k: 10,
                predicates: vec![
                    ("type".into(), "sedan".into()),
                    ("color".into(), "red".into())
                ],
                ranking: vec![
                    RankTerm::SquaredDistance { dim: "price".into(), weight: 1.0, target: 0.3 },
                    RankTerm::SquaredDistance {
                        dim: "mileage".into(),
                        weight: 0.5,
                        target: 0.15
                    },
                ],
            }
        );
    }

    #[test]
    fn parses_skyline_with_preference_by() {
        let q = parse(
            "SELECT SKYLINE FROM cameras WHERE brand = 'canon' PREFERENCE BY price, neg_zoom",
        )
        .unwrap();
        assert_eq!(
            q,
            SqlQuery::Skyline {
                predicates: vec![("brand".into(), "canon".into())],
                pref_dims: vec!["price".into(), "neg_zoom".into()],
            }
        );
    }

    #[test]
    fn parses_minimal_forms() {
        assert_eq!(
            parse("select skyline from r").unwrap(),
            SqlQuery::Skyline { predicates: vec![], pref_dims: vec![] }
        );
        let q = parse("select top 3 from r order by price").unwrap();
        assert_eq!(
            q,
            SqlQuery::TopK {
                k: 3,
                predicates: vec![],
                ranking: vec![RankTerm::Linear { dim: "price".into(), weight: 1.0 }],
            }
        );
    }

    #[test]
    fn parses_linear_combination() {
        let q = parse("select top 5 from r order by 0.7 * x + y + 2 * z").unwrap();
        let SqlQuery::TopK { ranking, .. } = q else { panic!() };
        assert_eq!(
            ranking,
            vec![
                RankTerm::Linear { dim: "x".into(), weight: 0.7 },
                RankTerm::Linear { dim: "y".into(), weight: 1.0 },
                RankTerm::Linear { dim: "z".into(), weight: 2.0 },
            ]
        );
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "",
            "select",
            "select skyline",
            "select top from r order by x",
            "select top 0 from r order by x",
            "select top 5 from r order by (x - 1)^3",
            "select top 5 from r",
            "select skyline from r where a =",
            "select skyline from r where a = 'unclosed",
            "select skyline from r trailing junk",
            "select nothing from r",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("SeLeCt SkYlInE fRoM r").is_ok());
    }

    #[test]
    fn parses_session_directives() {
        assert_eq!(parse_command("SET DEADLINE_MS 250").unwrap(), SqlCommand::SetDeadlineMs(250));
        assert_eq!(parse_command("set max_blocks 1000").unwrap(), SqlCommand::SetMaxBlocks(1000));
        assert_eq!(parse_command("CANCEL").unwrap(), SqlCommand::Cancel);
        assert_eq!(parse_command("reset").unwrap(), SqlCommand::Reset);
        assert!(matches!(
            parse_command("select skyline from r").unwrap(),
            SqlCommand::Statement(_)
        ));
        for bad in ["set", "set deadline_ms", "set deadline_ms -1", "set deadline_ms 1.5",
            "set warp_factor 9", "cancel now", "reset please"]
        {
            assert!(parse_command(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parses_self_healing_directives() {
        assert_eq!(parse_command("SCRUB").unwrap(), SqlCommand::Scrub);
        assert_eq!(parse_command("repair").unwrap(), SqlCommand::Repair);
        assert_eq!(parse_command("Stats").unwrap(), SqlCommand::Stats);
        for bad in ["scrub now", "repair all", "stats verbose"] {
            assert!(parse_command(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn scrub_and_repair_directives_heal_a_corrupted_durable_store() {
        use pcube_core::{DurabilityOptions, DurableDb, PCubeConfig};
        use pcube_data::{synthetic, SyntheticSpec};

        let spec = SyntheticSpec { n_tuples: 300, n_bool: 2, n_pref: 2, ..Default::default() };
        let relation = synthetic(&spec);
        let mut db =
            DurableDb::create(relation, &PCubeConfig::default(), DurabilityOptions::default());
        let mut session = SqlSession::new();

        let SessionReply::Rows(clean) =
            session.run_durable(&mut db, "select skyline from r").unwrap()
        else {
            panic!("query lines return rows");
        };

        // Arm checksums, then flip one bit on a live signature page —
        // silent media decay, invisible until someone looks.
        db.signature_store_mut().sig_pager_mut().set_checksums(true);
        let pid = db.signature_store_mut().sig_pager_mut().live_page_ids()[0];
        db.signature_store_mut().sig_pager_mut().corrupt_page(pid, 3, 0x20).unwrap();

        let SessionReply::Ack(scrub) = session.run_durable(&mut db, "SCRUB").unwrap() else {
            panic!("directives return acks");
        };
        assert!(scrub.contains("1 newly quarantined"), "scrub found the damage: {scrub}");

        let SessionReply::Ack(stats) = session.run_durable(&mut db, "STATS").unwrap() else {
            panic!("directives return acks");
        };
        assert!(stats.contains("pages_quarantined: 1"), "stats show the quarantine: {stats}");

        let SessionReply::Ack(repair) = session.run_durable(&mut db, "REPAIR").unwrap() else {
            panic!("directives return acks");
        };
        assert!(repair.contains("pages healed"), "repair reports healing: {repair}");

        // Healed store answers bit-identically and a second scrub is clean.
        let SessionReply::Ack(rescrub) = session.run_durable(&mut db, "SCRUB").unwrap() else {
            panic!("directives return acks");
        };
        assert!(rescrub.contains("0 newly quarantined"), "store is clean again: {rescrub}");
        let SessionReply::Rows(healed) =
            session.run_durable(&mut db, "select skyline from r").unwrap()
        else {
            panic!("query lines return rows");
        };
        let tids = |rows: &SqlOutcome| -> Vec<u64> {
            let mut t: Vec<u64> = rows.rows.iter().map(|r| r.tid).collect();
            t.sort_unstable();
            t
        };
        assert_eq!(tids(&clean), tids(&healed));
    }

    #[test]
    fn repair_requires_a_durable_session() {
        use pcube_core::PCubeConfig;
        use pcube_data::{synthetic, SyntheticSpec};

        let spec = SyntheticSpec { n_tuples: 50, n_bool: 2, n_pref: 2, ..Default::default() };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
        let mut session = SqlSession::new();
        let Err(e) = session.run(&db, "REPAIR") else { panic!("REPAIR needs durability") };
        assert!(e.to_string().contains("durable"), "points at run_durable: {e}");
        // SCRUB and STATS work read-only.
        assert!(matches!(session.run(&db, "SCRUB"), Ok(SessionReply::Ack(_))));
        assert!(matches!(session.run(&db, "STATS"), Ok(SessionReply::Ack(_))));
    }

    #[test]
    fn session_budget_and_cancel_govern_statements() {
        use pcube_core::{PCubeConfig, StopReason};
        use pcube_data::{synthetic, SyntheticSpec};

        let spec = SyntheticSpec { n_tuples: 400, n_bool: 2, n_pref: 2, ..Default::default() };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
        let mut session = SqlSession::new();

        // Ungoverned session: complete answer.
        let SessionReply::Rows(full) = session.run(&db, "select skyline from r").unwrap() else {
            panic!("query lines return rows");
        };
        assert!(full.stats.outcome.is_complete());
        assert!(render_outcome(&full.stats).is_none());

        // A one-block budget trips almost immediately; the partial result
        // is rendered, and a sound subset of the full skyline.
        let SessionReply::Ack(_) = session.run(&db, "set max_blocks 1").unwrap() else {
            panic!("directives return acks");
        };
        assert_eq!(session.budget().max_blocks(), Some(1));
        let SessionReply::Rows(cut) = session.run(&db, "select skyline from r").unwrap() else {
            panic!("query lines return rows");
        };
        assert_eq!(cut.stats.outcome.partial_reason(), Some(StopReason::BlockBudgetExceeded));
        assert!(render_outcome(&cut.stats).unwrap().contains("block budget exceeded"));
        let full_tids: std::collections::HashSet<u64> =
            full.rows.iter().map(|r| r.tid).collect();
        assert!(cut.rows.iter().all(|r| full_tids.contains(&r.tid)), "partial ⊆ full");

        // CANCEL stops statements instantly until RESET re-arms.
        session.run(&db, "set max_blocks 0").unwrap();
        session.run(&db, "cancel").unwrap();
        let SessionReply::Rows(out) = session.run(&db, "select skyline from r").unwrap() else {
            panic!("query lines return rows");
        };
        assert_eq!(out.stats.outcome.partial_reason(), Some(StopReason::Cancelled));
        session.run(&db, "reset").unwrap();
        let SessionReply::Rows(out) = session.run(&db, "select skyline from r").unwrap() else {
            panic!("query lines return rows");
        };
        assert!(out.stats.outcome.is_complete());
        assert_eq!(out.rows.len(), full.rows.len());
    }

    #[test]
    fn explain_renders_budget_fallback() {
        use pcube_core::{PCubeConfig, StopReason};
        use pcube_data::{synthetic, SyntheticSpec};

        let spec = SyntheticSpec { n_tuples: 400, n_bool: 2, n_pref: 2, ..Default::default() };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());

        // An unsatisfiably small block budget: no engine fits, the raw cost
        // winner runs governed, and EXPLAIN says so.
        let budget = QueryBudget::unlimited().with_block_budget(1);
        let out = execute_with(&db, "explain select skyline from r", &budget, None).unwrap();
        let plan = out.stats.plan.as_ref().expect("EXPLAIN records a plan");
        assert!(plan.budget_limited);
        assert!(explain_plan(&out.stats).unwrap().contains("budget:"));
        assert_eq!(
            out.stats.outcome.partial_reason(),
            Some(StopReason::BlockBudgetExceeded),
            "the chosen engine still stops when the budget trips"
        );
    }

    #[test]
    fn parses_pskyline_forms() {
        let q = parse(
            "SELECT SKYLINE OF price, mileage FROM cars WHERE type = 'sedan' \
             PRIORITIZE price OVER mileage",
        )
        .unwrap();
        assert_eq!(
            q,
            SqlQuery::PSkyline {
                predicates: vec![("type".into(), "sedan".into())],
                pref_dims: vec!["price".into(), "mileage".into()],
                edges: vec![("price".into(), "mileage".into())],
            }
        );
        // PREFERENCE BY works too, and AND chains edges.
        let q = parse(
            "select skyline from r preference by x, y, z \
             prioritize x over y and y over z",
        )
        .unwrap();
        let SqlQuery::PSkyline { edges, .. } = q else { panic!("expected p-skyline") };
        assert_eq!(edges.len(), 2);
        // No dimension list: priorities over all preference dimensions.
        let q = parse("select skyline from r prioritize x over y").unwrap();
        assert!(matches!(q, SqlQuery::PSkyline { ref pref_dims, .. } if pref_dims.is_empty()));
    }

    #[test]
    fn parses_subspace_forms() {
        let q = parse("SELECT SKYLINE IN SUBSPACE (price, age) FROM cars").unwrap();
        assert_eq!(
            q,
            SqlQuery::SubspaceSkyline {
                predicates: vec![],
                dims: vec!["price".into(), "age".into()],
            }
        );
    }

    #[test]
    fn rejects_malformed_class_clauses() {
        for bad in [
            "select skyline of from r",
            "select skyline of x from r preference by y",
            "select skyline in subspace from r",
            "select skyline in subspace () from r",
            "select skyline in subspace (x from r",
            "select skyline of x in subspace (y) from r",
            "select skyline in subspace (x) from r prioritize x over y",
            "select skyline from r prioritize x",
            "select skyline from r prioritize x over",
            "select skyline from r prioritize over x",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn binding_errors_are_typed_not_panics() {
        use pcube_core::PCubeConfig;
        use pcube_data::{synthetic, SyntheticSpec};

        let spec = SyntheticSpec { n_tuples: 100, n_bool: 2, n_pref: 3, ..Default::default() };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
        // n_pref = 3 → dims N0, N1, N2.
        for bad in [
            // Unknown dimension names.
            "select skyline in subspace (nope) from r",
            "select skyline from r prioritize nope over N0",
            // Duplicates.
            "select skyline in subspace (N0, N0) from r",
            "select skyline of N0, N0 from r prioritize N0 over N0",
            // Edge endpoint outside the listed dimensions.
            "select skyline of N0, N1 from r prioritize N0 over N2",
            // Cycles (direct and via transitivity).
            "select skyline from r prioritize N0 over N0",
            "select skyline from r prioritize N0 over N1 and N1 over N2 and N2 over N0",
        ] {
            assert!(execute(&db, bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn executes_pskyline_and_subspace_statements() {
        use pcube_core::PCubeConfig;
        use pcube_data::{synthetic, SyntheticSpec};
        use std::collections::HashSet;

        let spec = SyntheticSpec { n_tuples: 400, n_bool: 2, n_pref: 3, ..Default::default() };
        let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());

        // The p-skyline is a subset of the Pareto skyline over the same
        // dimensions, and an empty PRIORITIZE-free statement reproduces it.
        let pareto = execute(&db, "select skyline from r").unwrap();
        let pareto_tids: HashSet<u64> = pareto.rows.iter().map(|r| r.tid).collect();
        let p = execute(&db, "select skyline from r prioritize N0 over N1 and N0 over N2")
            .unwrap();
        assert!(!p.rows.is_empty());
        assert!(p.rows.iter().all(|r| pareto_tids.contains(&r.tid)), "p-skyline ⊆ skyline");

        // Subspace rows carry exactly the projected coordinates.
        let sub = execute(&db, "select skyline in subspace (N2, N0) from r").unwrap();
        assert!(!sub.rows.is_empty());
        assert!(sub.rows.iter().all(|r| r.coords.len() == 2));

        // EXPLAIN routes through the planner and names the class.
        let out = execute(&db, "explain select skyline from r prioritize N0 over N1").unwrap();
        let rendered = explain_plan(&out.stats).expect("EXPLAIN records a plan");
        assert!(rendered.contains("p-skyline"), "got: {rendered}");
        let out = execute(&db, "explain select skyline in subspace (N0, N1) from r").unwrap();
        assert!(explain_plan(&out.stats).unwrap().contains("subspace-skyline"));
    }

    #[test]
    fn parses_explain_prefix() {
        let stmt = parse_statement("explain select top 3 from r order by price").unwrap();
        assert!(stmt.explain);
        assert!(matches!(stmt.query, SqlQuery::TopK { k: 3, .. }));
        let stmt = parse_statement("select skyline from r").unwrap();
        assert!(!stmt.explain);
        // `EXPLAIN` alone is not a statement.
        assert!(parse_statement("explain").is_err());
    }
}
