//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without a crates.io registry, so the
//! subset of the rand 0.8 API actually used by the code base is vendored here
//! as a tiny, dependency-free implementation: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] (for `f64`/`f32`/`bool` and
//! the common integer widths) and [`Rng::gen_range`] over half-open and
//! inclusive ranges.
//!
//! The generator is a splitmix64-seeded xorshift128+, which is deterministic
//! and fast but **not** cryptographically secure and **not** stream-compatible
//! with upstream rand. Every use in this repository is for synthetic data and
//! tests, where determinism is a feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution: uniform in `[0, 1)`
    /// for floats, uniform over the full domain for integers and `bool`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`). Panics on an empty range, like upstream rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Distributions and uniform-range sampling.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can produce values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform `[0, 1)` floats, full-domain ints.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits, the classic open-interval construction.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform sampling over ranges.
    pub mod uniform {
        use super::super::RngCore;
        use core::ops::{Range, RangeInclusive};

        /// Types that can be drawn uniformly from a range.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Samples from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = (hi as i128) - (lo as i128) + inclusive as i128;
                        assert!(span > 0, "cannot sample from an empty range");
                        // Modulo reduction: a negligible bias for the small
                        // spans used in tests, and fully deterministic.
                        let off = (rng.next_u64() as u128 % span as u128) as i128;
                        ((lo as i128) + off) as $t
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        assert!(lo <= hi, "cannot sample from an empty range");
                        let frac = (rng.next_u64() >> 11) as f64
                            * (1.0 / (1u64 << 53) as f64);
                        lo + (frac as $t) * (hi - lo)
                    }
                }
            )*};
        }
        uniform_float!(f64, f32);

        /// Ranges a value can be sampled from (`a..b` and `a..=b`).
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    /// Deterministic xorshift128+ generator seeded via splitmix64.
    ///
    /// Stands in for rand's `StdRng`; statistically fine for synthetic data,
    /// not a cryptographic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    /// Alias: the workspace does not rely on a distinct small generator.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut s = state;
            let s0 = splitmix64(&mut s);
            let mut s1 = splitmix64(&mut s);
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xorshift128+ must not start at the all-zero state
            }
            StdRng { s0, s1 }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = super::rngs::StdRng::seed_from_u64(42);
        let mut b = super::rngs::StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut r = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..7);
            assert!((3..7).contains(&v));
            let w = r.gen_range(1u16..=4);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
