//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments without a crates.io registry, so the
//! subset of the criterion 0.5 API the benches use is vendored here as a
//! minimal wall-clock harness: `Criterion::default().sample_size(..)`,
//! `bench_function`, `benchmark_group`/`bench_with_input`/`finish`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It reports mean wall-clock time per iteration over `sample_size` samples —
//! good enough for A/B comparisons in this repository, with none of
//! criterion's statistics, plotting, or baseline management.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labelled by `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing context handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times to smooth clock granularity.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up and calibration: aim for ~10ms of work per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let reps = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let start = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += reps;
    }
}

fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.iters == 0 {
        println!("{label:<48} (no iterations recorded)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{label:<48} {:>12} /iter   ({} iters)", fmt_ns(per_iter), b.iters);
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group; only the `name/config/targets` form is
/// supported (the form this workspace uses).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
