//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments without a crates.io registry, so the
//! subset of the proptest 1.x API the tests actually use is vendored here:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), the [`Strategy`]
//! trait with `prop_map`/`boxed`, range and tuple strategies, `Just`,
//! `prop_oneof!`, `prop::collection::{vec, hash_set, btree_set}`,
//! `prop::sample::Index`, `any::<T>()`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Two deliberate simplifications versus upstream:
//!
//! 1. **Seeds are fixed.** Each `proptest!` test derives its RNG seed from the
//!    test's module path and name (override with the `PROPTEST_SEED`
//!    environment variable), so every CI run explores exactly the same cases
//!    and failures are reproducible by rerunning the test.
//! 2. **No shrinking.** A failing case reports the panic directly; with fixed
//!    seeds the failing input is already reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// How many random cases a `proptest!` test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier (module path + name),
        /// XOR-ed with the `PROPTEST_SEED` environment variable when set.
        pub fn deterministic(test_id: &str) -> Self {
            // FNV-1a over the test id: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(v) = s.parse::<u64>() {
                    h ^= v;
                }
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0) is an empty choice");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// The [`Strategy`] trait and core combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for producing random values of an output type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value using `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by heterogeneous `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    ((self.start as i128)
                        + (rng.next_u64() as u128 % span as u128) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128) - (lo as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    ((lo as i128)
                        + (rng.next_u64() as u128 % span as u128) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// `&str` as a strategy: a tiny regex dialect supporting `.{lo,hi}`
    /// (arbitrary printable strings with bounded length). Anything else
    /// falls back to strings of length 0..=32 from the same alphabet.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_len_pattern(self).unwrap_or((0, 32));
            let len = lo + rng.below(hi - lo + 1);
            let pool: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '\'',
                '"', '(', ')', ',', ';', '=', '<', '>', '*', '-', '_', '.',
                '%', 'é', 'µ', 'λ', '�',
            ];
            (0..len).map(|_| pool[rng.below(pool.len())]).collect()
        }
    }

    /// Parses `.{lo,hi}` into `(lo, hi)`.
    fn parse_len_pattern(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }
}

/// Strategies for collections with a size range.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use std::collections::{BTreeSet, HashSet};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// `Vec<T>` strategy with element strategy `element` and size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet<T>` strategy; like upstream, duplicate draws shrink the set.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    /// Output of [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>` strategy; duplicate draws shrink the set.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Random index selection into runtime-sized slices.
pub mod sample {
    /// An index drawn independently of any particular collection length;
    /// call [`Index::index`] to project it onto a non-empty collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Maps this draw onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }
}

/// The [`Arbitrary`] trait and the [`any`] entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64() as usize)
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines deterministic randomized tests.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `fn name(pat in strategy,
/// ...) { body }` items, each expanded to a `#[test]` running `config.cases`
/// seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    // The body runs in a closure returning Result so that
                    // upstream-style `return Ok(())` and `prop_assume!` both
                    // work as early exits.
                    #[allow(clippy::redundant_closure_call, unreachable_code)]
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            #[allow(clippy::needless_return)]
                            return ::std::result::Result::Ok(());
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        panic!("proptest case failed: {}", __e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies that may have different concrete types.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_collections_respect_bounds(
            x in 0u32..10,
            v in prop::collection::vec(0.0f64..1.0, 0..8),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 8);
            for f in &v {
                prop_assert!((0.0..1.0).contains(f));
            }
            prop_assert!(idx.index(5) < 5);
        }

        #[test]
        fn oneof_mixes_heterogeneous_arms(
            s in prop_oneof![Just("a".to_string()), ".{0,4}"],
        ) {
            prop_assert!(s.chars().count() <= 4 || s == "a");
        }

        #[test]
        fn assume_skips_cases(x in 0u8..=255) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
